// Tests for the network-level scheduler (sched/netplan.hpp): SRAM
// liveness planning invariants, fusion legality, the never-slower roofline
// contract, fold-interleaved schedules, and executor bit-exactness across
// schedule modes.
#include <gtest/gtest.h>

#include <cstring>

#include "nn/ops.hpp"
#include "sched/execute.hpp"
#include "sched/latency.hpp"
#include "sched/netplan.hpp"
#include "sched/timeline.hpp"
#include "systolic/sim.hpp"
#include "systolic/trace.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace fuse::sched {
namespace {

using nn::LayerDesc;
using nn::OpKind;
using systolic::ArrayConfig;
using tensor::Shape;
using tensor::Tensor;

const systolic::MemoryConfig kMem;  // defaults: 16 B/cycle, 8 MiB SRAM

nets::NetworkModel two_layer_chain(std::int64_t channels, std::int64_t hw,
                                   std::int64_t out_c) {
  nets::NetworkModel model;
  model.name = "dw_pw_chain";
  model.layers.push_back(
      nn::make_depthwise("dw", channels, hw, hw, 3, 1, 1));
  model.layers.push_back(
      nn::make_pointwise("pw", channels, hw, hw, out_c));
  return model;
}

LayerDesc activation_glue(std::int64_t c, std::int64_t h, std::int64_t w) {
  LayerDesc glue;
  glue.name = "relu";
  glue.kind = OpKind::kActivation;
  glue.in_c = c;
  glue.in_h = h;
  glue.in_w = w;
  glue.out_c = c;
  glue.out_h = h;
  glue.out_w = w;
  return glue;
}

LayerDesc pool_glue(std::int64_t c, std::int64_t h, std::int64_t w) {
  LayerDesc glue;
  glue.name = "pool";
  glue.kind = OpKind::kMaxPool;
  glue.in_c = c;
  glue.in_h = h;
  glue.in_w = w;
  glue.kernel_h = 1;
  glue.kernel_w = 1;
  glue.out_c = c;
  glue.out_h = h;
  glue.out_w = w;
  return glue;
}

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

// --- mode plumbing -----------------------------------------------------------

TEST(SchedMode, NameParseRoundTrip) {
  for (SchedMode mode : {SchedMode::kPerLayer, SchedMode::kFused}) {
    SchedMode parsed;
    ASSERT_TRUE(parse_sched_mode(sched_mode_name(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  SchedMode parsed;
  EXPECT_TRUE(parse_sched_mode("per_layer", &parsed));
  EXPECT_EQ(parsed, SchedMode::kPerLayer);
  EXPECT_FALSE(parse_sched_mode("bogus", &parsed));
  EXPECT_FALSE(parse_sched_mode("", &parsed));
}

TEST(SchedMode, SetterControlsProcessWideMode) {
  const SchedMode before = sched_mode();
  set_sched_mode(SchedMode::kFused);
  EXPECT_EQ(sched_mode(), SchedMode::kFused);
  set_sched_mode(SchedMode::kPerLayer);
  EXPECT_EQ(sched_mode(), SchedMode::kPerLayer);
  set_sched_mode(before);
}

// --- per-fold footprint ------------------------------------------------------

TEST(PeakFoldBytes, MatchesFoldTraceAcrossLayerKinds) {
  const ArrayConfig cfg = systolic::square_array(16);
  const std::vector<LayerDesc> layers = {
      nn::make_conv("conv", 3, 16, 16, 8, 3, 2, 1),
      nn::make_depthwise("dw", 12, 9, 9, 3, 1, 1),
      nn::make_pointwise("pw", 12, 9, 9, 24),
      nn::make_fuse_row("row", 6, 9, 9, 3, 1, 1),
      nn::make_fuse_col("col", 6, 9, 9, 3, 1, 1),
      nn::make_fuse_row("row_s2", 6, 9, 9, 3, 2, 1),
      nn::make_fully_connected("fc", 64, 10),
  };
  for (const LayerDesc& layer : layers) {
    const systolic::MappingPlan plan = systolic::lower(layer, cfg);
    EXPECT_EQ(systolic::plan_peak_fold_bytes(plan, cfg, kMem),
              systolic::plan_trace(plan, cfg, kMem).peak_fold_bytes())
        << layer.name;
  }
}

// --- liveness planning -------------------------------------------------------

void check_liveness_invariants(const NetworkPlan& plan) {
  // Staging is the double-buffered worst per-fold footprint.
  std::uint64_t max_peak = 0;
  for (const std::size_t i : plan.on_array) {
    max_peak = std::max(max_peak, systolic::plan_peak_fold_bytes(
                                      plan.layer_plans[i], plan.cfg,
                                      plan.mem));
  }
  EXPECT_EQ(plan.staging_bytes, 2 * max_peak);

  const std::uint64_t sram =
      static_cast<std::uint64_t>(plan.mem.sram_bytes);
  for (std::size_t a = 0; a < plan.buffers.size(); ++a) {
    const ActivationBuffer& ba = plan.buffers[a];
    if (ba.spilled) {
      continue;
    }
    // Resident buffers sit between the staging region and SRAM capacity.
    EXPECT_GE(ba.offset, plan.staging_bytes);
    EXPECT_LE(ba.offset + ba.bytes, sram);
    // Two buffers live at the same step never overlap in bytes.
    for (std::size_t b = a + 1; b < plan.buffers.size(); ++b) {
      const ActivationBuffer& bb = plan.buffers[b];
      if (bb.spilled || ba.last_step < bb.first_step ||
          bb.last_step < ba.first_step) {
        continue;
      }
      const bool disjoint = ba.offset + ba.bytes <= bb.offset ||
                            bb.offset + bb.bytes <= ba.offset;
      EXPECT_TRUE(disjoint)
          << "live buffers overlap: [" << ba.offset << ", "
          << ba.offset + ba.bytes << ") vs [" << bb.offset << ", "
          << bb.offset + bb.bytes << ")";
    }
  }
  // High water always covers at least the staging region.
  EXPECT_GE(plan.sram_high_water, plan.staging_bytes);
}

TEST(Liveness, InvariantsHoldAcrossZooVariants) {
  const ArrayConfig cfg = systolic::square_array(64);
  for (nets::NetworkId id : nets::paper_networks()) {
    for (core::NetworkVariant variant : core::all_network_variants()) {
      const VariantBuild build = build_variant(id, variant, cfg);
      for (SchedMode mode : {SchedMode::kPerLayer, SchedMode::kFused}) {
        const NetworkPlan plan = plan_network(build.model, cfg, kMem, mode);
        check_liveness_invariants(plan);
      }
    }
  }
}

TEST(Liveness, FuseStageLifetimesCoverTheConcatConsumer) {
  // row at step 0, col at step 1, pw at step 2: the row output must stay
  // live through the pointwise (it is half of the concatenated input), and
  // the stage input must stay live through the col branch.
  nets::NetworkModel model;
  model.name = "fuse_stage";
  LayerDesc row = nn::make_fuse_row("row", 4, 8, 8, 3, 1, 1);
  LayerDesc col = nn::make_fuse_col("col", 4, 8, 8, 3, 1, 1);
  row.fuse_slot = 0;
  col.fuse_slot = 0;
  model.layers = {row, col, nn::make_pointwise("pw", 8, 8, 8, 16)};
  const ArrayConfig cfg = systolic::square_array(8);
  const NetworkPlan plan =
      plan_network(model, cfg, kMem, SchedMode::kPerLayer);
  ASSERT_EQ(plan.buffers.size(), 4u);  // input + 3 outputs
  EXPECT_EQ(plan.buffers[0].last_step, 1u);  // input read by row AND col
  EXPECT_EQ(plan.buffers[1].last_step, 2u);  // row output read by pw
  check_liveness_invariants(plan);
}

TEST(Liveness, TinySramSpillsInsteadOfOverlapping) {
  const ArrayConfig cfg = systolic::square_array(64);
  systolic::MemoryConfig mem = kMem;
  mem.sram_bytes = 1;  // nothing fits; staging exceeds capacity too
  const auto v2 = nets::build_network(nets::NetworkId::kMobileNetV2);
  const NetworkPlan plan = plan_network(v2, cfg, mem, SchedMode::kFused);
  for (const ActivationBuffer& buffer : plan.buffers) {
    EXPECT_TRUE(buffer.spilled);
  }
  // Spilled intermediates make every fusion illegal.
  EXPECT_TRUE(plan.fused_pairs.empty());
  // Spilling never changes the cycle axis.
  const NetworkPlan reference =
      plan_network(v2, cfg, kMem, SchedMode::kPerLayer);
  EXPECT_EQ(plan.total_cycles, reference.total_cycles);
}

// --- schedule structure ------------------------------------------------------

void check_segments_contiguous(const NetworkPlan& plan) {
  std::uint64_t cursor = 0;
  for (const ScheduleSegment& seg : plan.segments) {
    EXPECT_EQ(seg.start_cycle, cursor);
    EXPECT_GE(seg.end_cycle, seg.start_cycle);
    cursor = seg.end_cycle;
  }
  EXPECT_EQ(cursor, plan.total_cycles);
  std::uint64_t expected = 0;
  for (const std::size_t i : plan.on_array) {
    expected += plan.layer_latency[i].cycles;
  }
  EXPECT_EQ(plan.total_cycles, expected);
}

TEST(Schedule, SegmentsContiguousAcrossZooVariants) {
  const ArrayConfig cfg = systolic::square_array(64);
  for (nets::NetworkId id : nets::paper_networks()) {
    for (core::NetworkVariant variant : core::all_network_variants()) {
      const VariantBuild build = build_variant(id, variant, cfg);
      for (SchedMode mode : {SchedMode::kPerLayer, SchedMode::kFused}) {
        check_segments_contiguous(
            plan_network(build.model, cfg, kMem, mode));
      }
    }
  }
}

TEST(Schedule, InterleavedPairAlternatesProducerAndConsumer) {
  // 16x16 array, 24x24 positions -> 576 positions = 36 consumer stripes:
  // the producer's folds must be spread across them, not all up front.
  const nets::NetworkModel model = two_layer_chain(8, 24, 16);
  const ArrayConfig cfg = systolic::square_array(16);
  const NetworkPlan plan =
      plan_network(model, cfg, kMem, SchedMode::kFused);
  ASSERT_EQ(plan.fused_pairs.size(), 1u);
  ASSERT_GT(plan.segments.size(), 2u) << "pair did not interleave";
  bool saw_producer_after_consumer = false;
  bool seen_consumer = false;
  for (const ScheduleSegment& seg : plan.segments) {
    EXPECT_TRUE(seg.fused);
    if (seg.layer_index == 1) {
      seen_consumer = true;
    } else if (seen_consumer) {
      saw_producer_after_consumer = true;
    }
  }
  EXPECT_TRUE(saw_producer_after_consumer)
      << "all producer folds ran before the first consumer stripe";
  check_segments_contiguous(plan);
}

TEST(Schedule, ActivationGlueDoesNotBlockFusionButPoolDoes) {
  const ArrayConfig cfg = systolic::square_array(16);
  nets::NetworkModel with_act = two_layer_chain(8, 8, 16);
  with_act.layers.insert(with_act.layers.begin() + 1,
                         activation_glue(8, 8, 8));
  EXPECT_EQ(
      plan_network(with_act, cfg, kMem, SchedMode::kFused)
          .fused_pairs.size(),
      1u);

  nets::NetworkModel with_pool = two_layer_chain(8, 8, 16);
  with_pool.layers.insert(with_pool.layers.begin() + 1, pool_glue(8, 8, 8));
  EXPECT_TRUE(plan_network(with_pool, cfg, kMem, SchedMode::kFused)
                  .fused_pairs.empty());
}

TEST(Schedule, FuseTripleFusesBothBranches) {
  nets::NetworkModel model;
  model.name = "fuse_stage";
  LayerDesc row = nn::make_fuse_row("row", 4, 12, 12, 3, 1, 1);
  LayerDesc col = nn::make_fuse_col("col", 4, 12, 12, 3, 1, 1);
  row.fuse_slot = 0;
  col.fuse_slot = 0;
  model.layers = {row, col, nn::make_pointwise("pw", 8, 12, 12, 16)};
  const ArrayConfig cfg = systolic::square_array(8);
  const NetworkPlan plan =
      plan_network(model, cfg, kMem, SchedMode::kFused);
  ASSERT_EQ(plan.fused_pairs.size(), 1u);
  const FusedPair& pair = plan.fused_pairs.front();
  EXPECT_EQ(pair.producer, 0u);
  EXPECT_EQ(pair.producer2, 1u);
  EXPECT_EQ(pair.consumer, 2u);
  EXPECT_EQ(pair.saved_output_bytes,
            plan.layer_traffic[0].output_bytes +
                plan.layer_traffic[1].output_bytes);
  EXPECT_EQ(pair.saved_input_bytes, plan.layer_traffic[2].input_bytes);
  check_segments_contiguous(plan);
  // The roofline charges the triple as one unit with the savings applied.
  const NetworkRoofline fused = plan_roofline(plan);
  const NetworkRoofline per = plan_roofline(
      plan_network(model, cfg, kMem, SchedMode::kPerLayer));
  EXPECT_EQ(per.total_bytes - fused.total_bytes,
            pair.saved_output_bytes + pair.saved_input_bytes);
  EXPECT_EQ(fused.compute_cycles, per.compute_cycles);
}

// --- roofline contract -------------------------------------------------------

TEST(Roofline, PerLayerPlanMatchesLegacyWalk) {
  const ArrayConfig cfg = systolic::square_array(64);
  const auto v2 = nets::build_network(nets::NetworkId::kMobileNetV2);
  const NetworkPlan plan =
      plan_network(v2, cfg, kMem, SchedMode::kPerLayer);
  const NetworkRoofline roofline = plan_roofline(plan);

  NetworkRoofline legacy;
  for (const LayerDesc& layer : v2.layers) {
    const std::uint64_t compute = layer_latency(layer, cfg).cycles;
    const systolic::TrafficEstimate traffic =
        layer_traffic(layer, cfg, kMem);
    const std::uint64_t memory = traffic.memory_cycles(kMem);
    legacy.compute_cycles += compute;
    legacy.memory_cycles += memory;
    legacy.bound_cycles += std::max(compute, memory);
    legacy.total_bytes += traffic.total_bytes();
    if (memory > compute && compute > 0) {
      ++legacy.memory_bound_layers;
    }
  }
  EXPECT_EQ(roofline.compute_cycles, legacy.compute_cycles);
  EXPECT_EQ(roofline.memory_cycles, legacy.memory_cycles);
  EXPECT_EQ(roofline.bound_cycles, legacy.bound_cycles);
  EXPECT_EQ(roofline.total_bytes, legacy.total_bytes);
  EXPECT_EQ(roofline.memory_bound_layers, legacy.memory_bound_layers);

  // network_roofline delegates here under the default per-layer mode.
  const NetworkRoofline via_api = network_roofline(v2, cfg, kMem);
  EXPECT_EQ(via_api.bound_cycles, roofline.bound_cycles);
  EXPECT_EQ(via_api.total_bytes, roofline.total_bytes);
}

TEST(Roofline, FusedNeverSlowerAcrossZooVariants) {
  const ArrayConfig cfg = systolic::square_array(64);
  for (nets::NetworkId id : nets::paper_networks()) {
    for (core::NetworkVariant variant : core::all_network_variants()) {
      const VariantBuild build = build_variant(id, variant, cfg);
      const NetworkRoofline per = plan_roofline(
          plan_network(build.model, cfg, kMem, SchedMode::kPerLayer));
      const NetworkRoofline fused = plan_roofline(
          plan_network(build.model, cfg, kMem, SchedMode::kFused));
      EXPECT_EQ(fused.compute_cycles, per.compute_cycles)
          << build.model.name;
      EXPECT_LE(fused.total_bytes, per.total_bytes) << build.model.name;
      EXPECT_LE(fused.memory_cycles, per.memory_cycles)
          << build.model.name;
      EXPECT_LE(fused.bound_cycles, per.bound_cycles) << build.model.name;
    }
  }
}

TEST(Roofline, MobileNetV2FusesAndSavesTraffic) {
  const ArrayConfig cfg = systolic::square_array(64);
  for (core::NetworkVariant variant :
       {core::NetworkVariant::kBaseline, core::NetworkVariant::kFuseFull,
        core::NetworkVariant::kFuseHalf}) {
    const VariantBuild build =
        build_variant(nets::NetworkId::kMobileNetV2, variant, cfg);
    const NetworkPlan fused_plan =
        plan_network(build.model, cfg, kMem, SchedMode::kFused);
    EXPECT_GT(fused_plan.fused_pairs.size(), 0u);
    const NetworkRoofline per = plan_roofline(
        plan_network(build.model, cfg, kMem, SchedMode::kPerLayer));
    const NetworkRoofline fused = plan_roofline(fused_plan);
    EXPECT_LT(fused.memory_cycles, per.memory_cycles)
        << core::network_variant_name(variant);
  }
}

TEST(Roofline, ResNet50HasNoPairsAndIdenticalRooflines) {
  const ArrayConfig cfg = systolic::square_array(64);
  const auto resnet = nets::build_network(nets::NetworkId::kResNet50);
  const NetworkPlan fused_plan =
      plan_network(resnet, cfg, kMem, SchedMode::kFused);
  EXPECT_TRUE(fused_plan.fused_pairs.empty());
  const NetworkRoofline per = plan_roofline(
      plan_network(resnet, cfg, kMem, SchedMode::kPerLayer));
  const NetworkRoofline fused = plan_roofline(fused_plan);
  EXPECT_EQ(fused.bound_cycles, per.bound_cycles);
  EXPECT_EQ(fused.memory_cycles, per.memory_cycles);
  EXPECT_EQ(fused.total_bytes, per.total_bytes);
  EXPECT_EQ(fused.memory_bound_layers, per.memory_bound_layers);
}

// --- timeline view -----------------------------------------------------------

TEST(Timeline, FusedPlanMergesGroupsIntoSingleEntries) {
  const ArrayConfig cfg = systolic::square_array(64);
  const VariantBuild build = build_variant(
      nets::NetworkId::kMobileNetV2, core::NetworkVariant::kBaseline, cfg);
  const NetworkPlan per =
      plan_network(build.model, cfg, kMem, SchedMode::kPerLayer);
  const NetworkPlan fused =
      plan_network(build.model, cfg, kMem, SchedMode::kFused);
  const Timeline per_timeline = plan_timeline(per, build.model);
  const Timeline fused_timeline = plan_timeline(fused, build.model);
  EXPECT_EQ(per_timeline.total_cycles, fused_timeline.total_cycles);
  ASSERT_GT(fused.fused_pairs.size(), 0u);
  // Every pair removes one entry (producer and consumer share a bar).
  EXPECT_EQ(fused_timeline.entries.size() + fused.fused_pairs.size(),
            per_timeline.entries.size());
  // network_timeline is the legacy per-layer view.
  const Timeline legacy = network_timeline(build.model, cfg);
  ASSERT_EQ(legacy.entries.size(), per_timeline.entries.size());
  EXPECT_EQ(legacy.total_cycles, per_timeline.total_cycles);
}

// --- executor ----------------------------------------------------------------

TEST(ExecuteNetwork, BitIdenticalAcrossModesAndThreads) {
  nets::NetworkModel model = two_layer_chain(6, 10, 9);
  model.layers.push_back(nn::make_depthwise("dw2", 9, 10, 10, 3, 1, 1));
  model.layers.push_back(nn::make_pointwise("pw2", 9, 10, 10, 4));
  ArrayConfig cfg = systolic::square_array(8);
  cfg.overlap_fold_drain = false;  // what the simulator measures

  const std::vector<Tensor> weights = {
      random_tensor(Shape{6, 1, 3, 3}, 1),
      random_tensor(Shape{9, 6, 1, 1}, 2),
      random_tensor(Shape{9, 1, 3, 3}, 3),
      random_tensor(Shape{4, 9, 1, 1}, 4),
  };
  const Tensor input = random_tensor(Shape{1, 6, 10, 10}, 5);

  const NetworkPlan per =
      plan_network(model, cfg, kMem, SchedMode::kPerLayer);
  const NetworkPlan fused =
      plan_network(model, cfg, kMem, SchedMode::kFused);
  EXPECT_EQ(fused.fused_pairs.size(), 2u);

  const NetworkExecution base =
      execute_network_on_array(model, weights, input, per, cfg);
  EXPECT_EQ(base.cycles, per.total_cycles);

  const int saved_threads = systolic::sim_threads();
  for (const NetworkPlan* plan : {&per, &fused}) {
    for (const int threads : {1, 2, 4}) {
      systolic::set_sim_threads(threads);
      const NetworkExecution exec =
          execute_network_on_array(model, weights, input, *plan, cfg);
      EXPECT_EQ(exec.cycles, plan->total_cycles);
      EXPECT_EQ(exec.folds, base.folds);
      EXPECT_EQ(exec.mac_ops, base.mac_ops);
      ASSERT_EQ(exec.output.shape(), base.output.shape());
      EXPECT_EQ(std::memcmp(exec.output.data(), base.output.data(),
                            static_cast<std::size_t>(
                                base.output.num_elements()) *
                                sizeof(float)),
                0)
          << "outputs diverge across schedule modes / threads";
    }
  }
  systolic::set_sim_threads(saved_threads);
}

// --- telemetry ---------------------------------------------------------------

TEST(Telemetry, PlanNetworkRecordsPairAndSramMetrics) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  const ArrayConfig cfg = systolic::square_array(16);
  const nets::NetworkModel model = two_layer_chain(8, 8, 16);
  util::Counter& plans = util::metrics().counter("netplan.plans");
  util::Counter& pairs = util::metrics().counter("netplan.pairs_fused");
  util::Counter& saved = util::metrics().counter("netplan.saved_bytes");
  const std::uint64_t plans0 = plans.value();
  const std::uint64_t pairs0 = pairs.value();
  const std::uint64_t saved0 = saved.value();
  const NetworkPlan plan =
      plan_network(model, cfg, kMem, SchedMode::kFused);
  EXPECT_EQ(plans.value(), plans0 + 1);
  EXPECT_EQ(pairs.value(), pairs0 + plan.fused_pairs.size());
  std::uint64_t expected_saved = 0;
  for (const FusedPair& pair : plan.fused_pairs) {
    expected_saved += pair.saved_output_bytes + pair.saved_input_bytes;
  }
  EXPECT_EQ(saved.value(), saved0 + expected_saved);
  EXPECT_EQ(static_cast<std::uint64_t>(
                util::metrics().gauge("netplan.sram_high_water").value()),
            plan.sram_high_water);
}

}  // namespace
}  // namespace fuse::sched
