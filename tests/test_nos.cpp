// Tests for the Neural Operator Search module.
#include <gtest/gtest.h>

#include "nos/search.hpp"
#include "util/check.hpp"

namespace fuse::nos {
namespace {

using core::NetworkVariant;
using nets::NetworkId;

systolic::ArrayConfig paper_array() { return systolic::square_array(64); }

TEST(SlotOptions, ThreeOptionsPerSlot) {
  const auto options = slot_options(NetworkId::kMobileNetV1, paper_array());
  ASSERT_EQ(options.size(), 13u);
  for (const auto& slot : options) {
    ASSERT_EQ(slot.size(), 3u);
    EXPECT_EQ(slot[0].mode, FuseMode::kBaseline);
    EXPECT_EQ(slot[1].mode, FuseMode::kFull);
    EXPECT_EQ(slot[2].mode, FuseMode::kHalf);
    for (const SlotOption& o : slot) {
      EXPECT_GT(o.cycles, 0u);
      EXPECT_GT(o.params, 0u);
    }
  }
}

TEST(SlotOptions, FuseOptionsAreFasterOnThePaperArray) {
  const auto options = slot_options(NetworkId::kMobileNetV2, paper_array());
  for (const auto& slot : options) {
    EXPECT_LT(slot[1].cycles, slot[0].cycles);  // Full beats baseline
    EXPECT_LT(slot[2].cycles, slot[0].cycles);  // Half beats baseline
    EXPECT_LE(slot[2].params, slot[0].params);  // Half never adds params
    EXPECT_GE(slot[1].params, slot[0].params);  // Full adds params
  }
}

TEST(Search, GenerousBudgetPicksFastestOptionEverywhere) {
  NosConfig config;
  config.max_params_ratio = 10.0;  // effectively unconstrained
  const NosResult result =
      search_operators(NetworkId::kMobileNetV1, paper_array(), config);
  // Unconstrained, the per-slot minimum-cycles option must be chosen.
  for (std::size_t slot = 0; slot < result.modes.size(); ++slot) {
    const auto& opts = result.options[slot];
    std::uint64_t best = opts[0].cycles;
    FuseMode best_mode = opts[0].mode;
    for (const SlotOption& o : opts) {
      if (o.cycles < best) {
        best = o.cycles;
        best_mode = o.mode;
      }
    }
    EXPECT_EQ(result.modes[slot], best_mode) << "slot " << slot;
  }
  EXPECT_GT(result.speedup, 1.0);
}

TEST(Search, UnitBudgetForcesFeasibleMix) {
  // Budget exactly the baseline's params: Half (fewer params) can buy
  // room, baseline fills the rest; result must respect the budget.
  NosConfig config;
  config.max_params_ratio = 1.0;
  const NosResult result =
      search_operators(NetworkId::kMobileNetV2, paper_array(), config);
  EXPECT_LE(result.params_ratio, 1.0 + 1e-3);
  EXPECT_GT(result.speedup, 1.0);  // Half-only already beats baseline
}

TEST(Search, BudgetMonotonicity) {
  // More parameter budget can never make the optimum slower.
  const NetworkId id = NetworkId::kMobileNetV3Small;
  std::uint64_t prev_cycles = std::numeric_limits<std::uint64_t>::max();
  for (double ratio : {1.0, 1.05, 1.2, 1.6, 3.0}) {
    NosConfig config;
    config.max_params_ratio = ratio;
    const NosResult result = search_operators(id, paper_array(), config);
    EXPECT_LE(result.cycles, prev_cycles) << "ratio " << ratio;
    prev_cycles = result.cycles;
  }
}

TEST(Search, BeatsTheUniformVariantsUnderTheSameBudget) {
  // The searched mix must be at least as fast as any uniform variant that
  // fits the same budget — that's what "search" buys over Table I's rows.
  const NetworkId id = NetworkId::kMnasNetB1;
  const auto cfg = paper_array();
  NosConfig config;
  config.max_params_ratio = 1.02;
  const NosResult result = search_operators(id, cfg, config);

  const sched::VariantBuild half =
      sched::build_variant(id, NetworkVariant::kFuseHalf, cfg);
  const double base_params = static_cast<double>(
      sched::build_variant(id, NetworkVariant::kBaseline, cfg)
          .model.total_params());
  // The Half variant fits a 1.02 budget (it has fewer params).
  ASSERT_LE(static_cast<double>(half.model.total_params()),
            1.02 * base_params);
  EXPECT_LE(result.cycles,
            sched::network_latency(half.model, cfg).total_cycles);
}

TEST(Search, ModesStringFormat) {
  NosConfig config;
  config.max_params_ratio = 10.0;
  const NosResult result =
      search_operators(NetworkId::kMobileNetV3Small, paper_array(), config);
  EXPECT_EQ(result.modes_string().size(), result.modes.size());
  for (char c : result.modes_string()) {
    EXPECT_TRUE(c == 'B' || c == 'F' || c == 'H');
  }
}

TEST(Search, ImpossibleBudgetThrows) {
  NosConfig config;
  config.max_params_ratio = 0.01;  // below even the shared parameters
  EXPECT_THROW(
      search_operators(NetworkId::kMobileNetV1, paper_array(), config),
      util::Error);
}

TEST(Search, TightGranularityStaysFeasible) {
  NosConfig config;
  config.max_params_ratio = 1.05;
  config.param_granularity = 128;
  const NosResult result =
      search_operators(NetworkId::kMobileNetV3Small, paper_array(), config);
  EXPECT_LE(result.params_ratio, 1.06);
}


TEST(SearchCapacity, LooseBudgetPicksMaxParamsEverywhere) {
  NosLatencyBudgetConfig config;
  config.max_cycles_ratio = 1.0;  // baseline latency: everything fits
  const NosResult result =
      search_capacity(NetworkId::kMobileNetV3Small, paper_array(), config);
  // Full has the most parameters per slot, so an unconstrained capacity
  // search chooses it everywhere.
  for (FuseMode mode : result.modes) {
    EXPECT_EQ(mode, FuseMode::kFull);
  }
  EXPECT_GT(result.params_ratio, 1.0);
}

TEST(SearchCapacity, TightBudgetFallsBackTowardHalf) {
  // A budget just above the all-Half latency leaves little room for Full.
  const NetworkId id = NetworkId::kMobileNetV2;
  const auto cfg = paper_array();
  const double half_ratio =
      1.0 / sched::speedup_vs_baseline(id, NetworkVariant::kFuseHalf, cfg);
  NosLatencyBudgetConfig config;
  config.max_cycles_ratio = half_ratio * 1.02;
  const NosResult result = search_capacity(id, cfg, config);
  int half_count = 0;
  for (FuseMode mode : result.modes) {
    if (mode == FuseMode::kHalf) {
      ++half_count;
    }
  }
  EXPECT_GT(half_count, static_cast<int>(result.modes.size()) / 2);
  EXPECT_LE(static_cast<double>(result.cycles),
            config.max_cycles_ratio * 1.05 *
                static_cast<double>(sched::network_latency(
                                        nets::build_network(id), cfg)
                                        .total_cycles));
}

TEST(SearchCapacity, ParamsMonotoneInLatencyBudget) {
  const NetworkId id = NetworkId::kMnasNetB1;
  std::uint64_t prev_params = 0;
  for (double ratio : {0.15, 0.2, 0.35, 0.6, 1.0}) {
    NosLatencyBudgetConfig config;
    config.max_cycles_ratio = ratio;
    const NosResult result = search_capacity(id, paper_array(), config);
    EXPECT_GE(result.params, prev_params) << "ratio " << ratio;
    prev_params = result.params;
  }
}

TEST(SearchCapacity, InfeasibleBudgetThrows) {
  NosLatencyBudgetConfig config;
  config.max_cycles_ratio = 0.001;  // below the mode-independent cycles
  EXPECT_THROW(
      search_capacity(NetworkId::kMobileNetV1, paper_array(), config),
      util::Error);
}

}  // namespace
}  // namespace fuse::nos
