// Tests for the array-mapping IR (systolic/mapping.hpp): the lowering
// pass is the single source of truth shared by the analytic model, the
// simulator, the executor, and the trace writer, so the core property here
// is differential —
//   sched::layer_latency == plan.total_latency() == sim.run_plan(plan)
// for randomized layers of every OpKind x {broadcast on/off} x
// {stride 1, 2}, including rectangular-kernel depthwise. Golden plan
// snapshots pin the lowering of one layer per kind.
#include <gtest/gtest.h>

#include "nn/layer.hpp"
#include "nn/ops.hpp"
#include "sched/execute.hpp"
#include "sched/latency.hpp"
#include "systolic/mapping.hpp"
#include "systolic/sim.hpp"
#include "systolic/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fuse::systolic {
namespace {

using nn::LayerDesc;
using nn::OpKind;
using tensor::Shape;
using tensor::Tensor;

ArrayConfig test_array(std::int64_t rows, std::int64_t cols) {
  ArrayConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.overlap_fold_drain = false;  // the mode the simulator measures
  return cfg;
}

std::int64_t conv_out(std::int64_t in, std::int64_t k, std::int64_t stride,
                      std::int64_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}

/// Conv-family LayerDesc with independent h/w geometry (the factories in
/// nn/layer.hpp only build square kernels).
LayerDesc conv_like(OpKind kind, std::int64_t in_c, std::int64_t out_c,
                    std::int64_t in_h, std::int64_t in_w, std::int64_t k_h,
                    std::int64_t k_w, std::int64_t stride,
                    std::int64_t groups) {
  LayerDesc layer;
  layer.kind = kind;
  layer.name = "layer";
  layer.in_c = in_c;
  layer.out_c = out_c;
  layer.in_h = in_h;
  layer.in_w = in_w;
  layer.kernel_h = k_h;
  layer.kernel_w = k_w;
  layer.stride_h = layer.stride_w = stride;
  layer.pad_h = k_h / 2;
  layer.pad_w = k_w / 2;
  layer.groups = groups;
  layer.out_h = conv_out(in_h, k_h, stride, layer.pad_h);
  layer.out_w = conv_out(in_w, k_w, stride, layer.pad_w);
  return layer;
}

/// One random latency-bearing layer of the given kind.
LayerDesc random_layer(OpKind kind, std::int64_t stride, util::Rng& rng) {
  const auto dim = [&](std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    rng.uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  };
  const std::int64_t in_h = dim(5, 12);
  const std::int64_t in_w = dim(5, 12);
  const std::int64_t k = 1 + 2 * dim(0, 1);  // 1 or 3
  switch (kind) {
    case OpKind::kStandardConv:
      return conv_like(kind, dim(1, 6), dim(1, 9), in_h, in_w, k, k,
                       stride, 1);
    case OpKind::kGroupedConv: {
      const std::int64_t groups = dim(1, 3);
      return conv_like(kind, groups * dim(1, 3), groups * dim(1, 3), in_h,
                       in_w, k, k, stride, groups);
    }
    case OpKind::kDepthwiseConv: {
      const std::int64_t c = dim(1, 6);
      // Rectangular kernels exercise the taps_h x taps_w window.
      return conv_like(kind, c, c, in_h, in_w, 1 + 2 * dim(0, 1),
                       1 + 2 * dim(0, 1), stride, c);
    }
    case OpKind::kPointwiseConv:
      return nn::make_pointwise("layer", dim(1, 6), in_h, in_w, dim(1, 9));
    case OpKind::kFuseRowConv:
      return nn::make_fuse_row("layer", dim(1, 6), in_h, in_w, k, stride,
                              k / 2);
    case OpKind::kFuseColConv:
      return nn::make_fuse_col("layer", dim(1, 6), in_h, in_w, k, stride,
                              k / 2);
    case OpKind::kFullyConnected:
      return nn::make_fully_connected("layer", dim(1, 40), dim(1, 30));
    default:
      FUSE_CHECK(false) << "not a latency-bearing kind";
  }
  return {};
}

/// The differential property: analytic latency, the plan fold, and the
/// cycle-level simulation of the plan agree exactly on cycles, folds, and
/// MACs.
void check_differential(const LayerDesc& layer, const ArrayConfig& cfg) {
  const MappingPlan plan = lower(layer, cfg);
  const LatencyEstimate analytic = sched::layer_latency(layer, cfg);
  const LatencyEstimate folded = plan.total_latency();
  ASSERT_EQ(analytic.cycles, folded.cycles) << plan.to_string();
  ASSERT_EQ(analytic.folds, folded.folds) << plan.to_string();
  ASSERT_EQ(analytic.mac_ops, folded.mac_ops) << plan.to_string();

  SystolicArraySim sim(cfg);
  const SimResult simmed = sim.run_plan(plan);
  ASSERT_EQ(simmed.cycles, folded.cycles) << plan.to_string();
  ASSERT_EQ(simmed.folds, folded.folds) << plan.to_string();
  ASSERT_EQ(simmed.mac_ops, folded.mac_ops) << plan.to_string();
}

TEST(MappingDifferential, EveryKindBroadcastAndStride) {
  const OpKind kinds[] = {
      OpKind::kStandardConv, OpKind::kGroupedConv, OpKind::kDepthwiseConv,
      OpKind::kPointwiseConv, OpKind::kFuseRowConv, OpKind::kFuseColConv,
      OpKind::kFullyConnected};
  std::uint64_t seed = 1;
  for (const OpKind kind : kinds) {
    for (const bool broadcast : {true, false}) {
      for (const std::int64_t stride : {1, 2}) {
        util::Rng rng(seed++);
        for (int trial = 0; trial < 4; ++trial) {
          ArrayConfig cfg = test_array(4 + 4 * static_cast<std::int64_t>(
                                               rng.uniform_index(2)),
                                       8);
          cfg.broadcast_links = broadcast;
          const LayerDesc layer = random_layer(kind, stride, rng);
          SCOPED_TRACE(nn::op_kind_name(kind) + " broadcast=" +
                       std::to_string(broadcast) + " stride=" +
                       std::to_string(stride) + " trial=" +
                       std::to_string(trial));
          check_differential(layer, cfg);
        }
      }
    }
  }
}

TEST(MappingDifferential, ChannelwiseStandardConvMapping) {
  util::Rng rng(99);
  for (const std::int64_t stride : {1, 2}) {
    for (int trial = 0; trial < 4; ++trial) {
      ArrayConfig cfg = test_array(8, 8);
      cfg.standard_conv_mapping = StandardConvMapping::kChannelwise;
      const LayerDesc layer =
          random_layer(OpKind::kStandardConv, stride, rng);
      SCOPED_TRACE("channelwise stride=" + std::to_string(stride));
      check_differential(layer, cfg);
    }
  }
}

TEST(MappingDifferential, RectangularDepthwiseKernels) {
  // The old latency path hard-rejected kernel_h != kernel_w; the lowering
  // carries the window as taps_h x taps_w and the property must hold.
  for (const auto& [k_h, k_w] :
       {std::pair<std::int64_t, std::int64_t>{3, 1}, {1, 5}, {5, 3}}) {
    const LayerDesc layer = conv_like(OpKind::kDepthwiseConv, 5, 5, 9, 11,
                                      k_h, k_w, 1, 5);
    SCOPED_TRACE(std::to_string(k_h) + "x" + std::to_string(k_w));
    check_differential(layer, test_array(8, 8));
    const MappingPlan plan = lower(layer, test_array(8, 8));
    ASSERT_EQ(plan.ops.size(), 1u);
    EXPECT_EQ(plan.ops[0].taps_h, k_h);
    EXPECT_EQ(plan.ops[0].taps_w, k_w);
    EXPECT_EQ(plan.ops[0].k, k_h * k_w);
  }
}

TEST(Lowering, GroupedConvRejectsIndivisibleChannels) {
  const ArrayConfig cfg = test_array(8, 8);
  LayerDesc bad = conv_like(OpKind::kGroupedConv, 7, 8, 6, 6, 3, 3, 1, 2);
  EXPECT_THROW(lower(bad, cfg), util::Error);
  bad = conv_like(OpKind::kGroupedConv, 8, 7, 6, 6, 3, 3, 1, 2);
  EXPECT_THROW(lower(bad, cfg), util::Error);
  bad = conv_like(OpKind::kGroupedConv, 8, 8, 6, 6, 3, 3, 1, 0);
  EXPECT_THROW(lower(bad, cfg), util::Error);
}

TEST(Lowering, GlueOpsLowerToEmptyPlans) {
  const ArrayConfig cfg = test_array(8, 8);
  for (const OpKind kind :
       {OpKind::kAvgPool, OpKind::kMaxPool, OpKind::kGlobalAvgPool,
        OpKind::kActivation, OpKind::kElementwiseAdd}) {
    LayerDesc glue;
    glue.kind = kind;
    glue.name = "glue";
    glue.in_c = glue.out_c = 4;
    glue.in_h = glue.in_w = glue.out_h = glue.out_w = 4;
    const MappingPlan plan = lower(glue, cfg);
    EXPECT_TRUE(plan.ops.empty()) << nn::op_kind_name(kind);
    EXPECT_EQ(plan.total_latency().cycles, 0u);
    EXPECT_EQ(plan.total_latency().pe_count, cfg.pe_count());
  }
}

TEST(Lowering, BatchedMatchesBatchedLatencyAndIgnoresChannelwise) {
  // Batched standard conv always lowers as one im2col matmul — the
  // channelwise mapping is a batch-1 specialization.
  ArrayConfig cfg = test_array(8, 8);
  cfg.standard_conv_mapping = StandardConvMapping::kChannelwise;
  const LayerDesc conv = conv_like(OpKind::kStandardConv, 3, 5, 7, 7, 3, 3,
                                   1, 1);
  const MappingPlan batched = lower_batched(conv, cfg, 4);
  ASSERT_EQ(batched.ops.size(), 1u);
  EXPECT_EQ(batched.ops[0].kind, PrimitiveKind::kIm2colTile);
  EXPECT_EQ(batched.ops[0].m, 4 * conv.out_h * conv.out_w);
  EXPECT_EQ(lower(conv, cfg).ops[0].kind, PrimitiveKind::kChannelwiseTile);

  for (const std::int64_t batch : {1, 3}) {
    util::Rng rng(123);
    for (const OpKind kind :
         {OpKind::kStandardConv, OpKind::kDepthwiseConv,
          OpKind::kFuseRowConv, OpKind::kFullyConnected}) {
      const LayerDesc layer = random_layer(kind, 1, rng);
      EXPECT_EQ(lower_batched(layer, cfg, batch).total_latency().cycles,
                sched::layer_latency_batched(layer, cfg, batch).cycles);
    }
  }
  EXPECT_THROW(lower_batched(conv, cfg, 0), util::Error);
}

TEST(PlanTraffic, ChannelwiseMatchesIm2colBytes) {
  // The preserved quirk: standard-conv DRAM traffic is the im2col volume
  // regardless of the compute mapping (the adder tree only changes where
  // partials reduce, not what crosses DRAM).
  ArrayConfig im2col_cfg = test_array(8, 8);
  ArrayConfig cw_cfg = im2col_cfg;
  cw_cfg.standard_conv_mapping = StandardConvMapping::kChannelwise;
  const MemoryConfig mem;
  const LayerDesc conv = conv_like(OpKind::kStandardConv, 3, 5, 9, 9, 3, 3,
                                   1, 1);
  const TrafficEstimate a =
      plan_traffic(lower(conv, im2col_cfg), im2col_cfg, mem);
  const TrafficEstimate b = plan_traffic(lower(conv, cw_cfg), cw_cfg, mem);
  EXPECT_EQ(a.input_bytes, b.input_bytes);
  EXPECT_EQ(a.weight_bytes, b.weight_bytes);
  EXPECT_EQ(a.output_bytes, b.output_bytes);
}

TEST(PlanTraffic, StridedFuseChargesKeptOutputsOnly) {
  // Dense positions a strided FuSe layer computes and discards shift
  // through the array without extra DRAM reads: traffic is identical with
  // dense compute on or off, even though cycles differ.
  ArrayConfig dense_cfg = test_array(8, 8);
  ArrayConfig skip_cfg = dense_cfg;
  skip_cfg.strided_fuse_dense_compute = false;
  const MemoryConfig mem;
  const LayerDesc row = nn::make_fuse_row("row", 4, 8, 8, 3, 2, 1);
  const TrafficEstimate dense =
      plan_traffic(lower(row, dense_cfg), dense_cfg, mem);
  const TrafficEstimate skip =
      plan_traffic(lower(row, skip_cfg), skip_cfg, mem);
  EXPECT_EQ(dense.total_bytes(), skip.total_bytes());
  EXPECT_GT(lower(row, dense_cfg).total_latency().cycles,
            lower(row, skip_cfg).total_latency().cycles);
}

TEST(PlanTrace, TotalCyclesMatchPlanFold) {
  const MemoryConfig mem;
  util::Rng rng(7);
  for (const bool overlap : {false, true}) {
    ArrayConfig cfg = test_array(8, 8);
    cfg.overlap_fold_drain = overlap;
    for (const OpKind kind :
         {OpKind::kStandardConv, OpKind::kDepthwiseConv,
          OpKind::kFuseRowConv, OpKind::kPointwiseConv}) {
      const LayerDesc layer = random_layer(kind, 1, rng);
      const MappingPlan plan = lower(layer, cfg);
      const FoldTrace trace = plan_trace(plan, cfg, mem);
      EXPECT_EQ(trace.total_cycles, plan.total_latency().cycles)
          << nn::op_kind_name(kind) << " overlap=" << overlap;
      std::uint64_t folds = 0;
      for (const PrimitiveOp& op : plan.ops) {
        folds += op.total().folds;
      }
      EXPECT_EQ(trace.folds.size(), folds);
    }
  }
}

// --- executor cross-checks for the plan-selected paths ----------------------

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

TEST(PlanExecution, ChannelwiseConvMatchesReferenceAndLatency) {
  ArrayConfig cfg = test_array(8, 8);
  cfg.standard_conv_mapping = StandardConvMapping::kChannelwise;
  const LayerDesc layer = nn::make_conv("conv", 3, 8, 8, 5, 3, 1, 1);
  const Tensor input = random_tensor(Shape{1, 3, 8, 8}, 31);
  const Tensor weight = random_tensor(Shape{5, 3, 3, 3}, 32);
  nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);
  const sched::LayerExecution exec =
      sched::execute_layer_on_array(layer, input, weight, cfg);
  EXPECT_TRUE(tensor::allclose(exec.output, expected, 1e-3F, 1e-4F))
      << "max diff " << tensor::max_abs_diff(exec.output, expected);
  const LatencyEstimate analytic = sched::layer_latency(layer, cfg);
  EXPECT_EQ(exec.cycles, analytic.cycles);
  EXPECT_EQ(exec.folds, analytic.folds);
  EXPECT_EQ(exec.mac_ops, analytic.mac_ops);
}

TEST(PlanExecution, NoBroadcastFuseMatchesReferenceAndLatency) {
  // The ablation array without per-row buses serializes each line as a
  // single-column matmul; the executor must follow the plan's fallback and
  // still produce the exact convolution.
  for (const std::int64_t stride : {1, 2}) {
    for (const bool dense : {true, false}) {
      ArrayConfig cfg = test_array(8, 8);
      cfg.broadcast_links = false;
      cfg.strided_fuse_dense_compute = dense;
      const LayerDesc layer =
          nn::make_fuse_row("row", 4, 8, 8, 3, stride, 1);
      const Tensor input = random_tensor(Shape{1, 4, 8, 8}, 41);
      const Tensor weight = random_tensor(Shape{4, 1, 1, 3}, 42);
      nn::Conv2dParams p;
      p.stride_h = stride;
      p.stride_w = stride;
      p.pad_w = 1;
      p.groups = 4;
      const Tensor expected = nn::conv2d(input, weight, nullptr, p);
      const sched::LayerExecution exec =
          sched::execute_layer_on_array(layer, input, weight, cfg);
      SCOPED_TRACE("stride=" + std::to_string(stride) + " dense=" +
                   std::to_string(dense));
      EXPECT_TRUE(tensor::allclose(exec.output, expected, 1e-3F, 1e-4F))
          << "max diff " << tensor::max_abs_diff(exec.output, expected);
      const LatencyEstimate analytic = sched::layer_latency(layer, cfg);
      EXPECT_EQ(exec.cycles, analytic.cycles);
      EXPECT_EQ(exec.mac_ops, analytic.mac_ops);
    }
  }
}

// --- golden plan snapshots ---------------------------------------------------

std::string plan_string(const LayerDesc& layer, ArrayConfig cfg) {
  return lower(layer, cfg).to_string();
}

TEST(PlanGolden, OneLayerPerKind) {
  const ArrayConfig cfg = test_array(8, 8);
  EXPECT_EQ(plan_string(nn::make_conv("c", 3, 8, 8, 5, 3, 1, 1), cfg),
            "im2col m=64 k=27 n=5 taps=3x3: 368 cycles, 8 folds, 8640 "
            "macs\n");
  ArrayConfig cw = cfg;
  cw.standard_conv_mapping = StandardConvMapping::kChannelwise;
  EXPECT_EQ(plan_string(nn::make_conv("c", 3, 8, 8, 5, 3, 1, 1), cw),
            "channelwise m=64 k=3 n=5 x9: 1584 cycles, 72 folds, 8640 "
            "macs\n");
  EXPECT_EQ(
      plan_string(conv_like(OpKind::kGroupedConv, 4, 6, 8, 8, 3, 3, 1, 2),
                  cfg),
      "im2col m=64 k=18 n=3 taps=3x3 x2: 560 cycles, 16 folds, 6912 "
      "macs\n");
  EXPECT_EQ(plan_string(nn::make_depthwise("d", 4, 8, 8, 3, 1, 1), cfg),
            "im2col m=64 k=9 n=1 taps=3x3 x4: 768 cycles, 32 folds, 2304 "
            "macs\n");
  EXPECT_EQ(plan_string(nn::make_pointwise("p", 6, 8, 8, 10), cfg),
            "matmul m=64 k=6 n=10: 400 cycles, 16 folds, 3840 macs\n");
  EXPECT_EQ(plan_string(nn::make_fuse_row("r", 4, 8, 8, 3, 1, 1), cfg),
            "fuse1d lines=32 out=8 taps=3 broadcast: 72 cycles, 4 folds, "
            "768 macs\n");
  EXPECT_EQ(plan_string(nn::make_fuse_col("l", 4, 8, 8, 3, 2, 1), cfg),
            "fuse1d lines=16 out=8 keep=4 taps=3 broadcast: 36 cycles, 2 "
            "folds, 384 macs\n");
  EXPECT_EQ(plan_string(nn::make_fully_connected("f", 12, 7), cfg),
            "matmul m=1 k=12 n=7: 19 cycles, 1 folds, 84 macs\n");
}

}  // namespace
}  // namespace fuse::systolic
