// Tests for the layer-on-array executor: for every operator kind, the
// simulated output must equal the fuse::nn reference and the measured
// cycle count must equal the analytic layer latency (non-overlapped mode).
#include <gtest/gtest.h>

#include "core/fuseconv.hpp"
#include "nn/ops.hpp"
#include "sched/execute.hpp"
#include "sched/latency.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fuse::sched {
namespace {

using nn::LayerDesc;
using nn::OpKind;
using systolic::ArrayConfig;
using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

ArrayConfig sim_array(std::int64_t size) {
  ArrayConfig cfg = systolic::square_array(size);
  cfg.overlap_fold_drain = false;  // what the simulator measures
  return cfg;
}

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

/// Runs the executor and asserts both halves of the contract.
void check_executes_exactly(const LayerDesc& layer, const Tensor& input,
                            const Tensor& weight, const Tensor& expected,
                            const ArrayConfig& cfg) {
  const LayerExecution exec =
      execute_layer_on_array(layer, input, weight, cfg);
  EXPECT_TRUE(allclose(exec.output, expected, 1e-3F, 1e-4F))
      << layer.name << ": max diff "
      << tensor::max_abs_diff(exec.output, expected);
  const auto analytic = layer_latency(layer, cfg);
  EXPECT_EQ(exec.cycles, analytic.cycles) << layer.name;
  EXPECT_EQ(exec.mac_ops, analytic.mac_ops) << layer.name;
  EXPECT_EQ(exec.folds, analytic.folds) << layer.name;
}

TEST(ExecuteLayer, StandardConv) {
  const LayerDesc layer = nn::make_conv("conv", 3, 8, 8, 5, 3, 1, 1);
  const Tensor input = random_tensor(Shape{1, 3, 8, 8}, 1);
  const Tensor weight = random_tensor(Shape{5, 3, 3, 3}, 2);
  nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);
  check_executes_exactly(layer, input, weight, expected, sim_array(8));
}

TEST(ExecuteLayer, StridedStandardConv) {
  const LayerDesc layer = nn::make_conv("conv", 3, 9, 9, 4, 3, 2, 1);
  const Tensor input = random_tensor(Shape{1, 3, 9, 9}, 3);
  const Tensor weight = random_tensor(Shape{4, 3, 3, 3}, 4);
  nn::Conv2dParams p;
  p.stride_h = 2;
  p.stride_w = 2;
  p.pad_h = 1;
  p.pad_w = 1;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);
  check_executes_exactly(layer, input, weight, expected, sim_array(8));
}

TEST(ExecuteLayer, DepthwiseConv) {
  const LayerDesc layer = nn::make_depthwise("dw", 4, 7, 7, 3, 1, 1);
  const Tensor input = random_tensor(Shape{1, 4, 7, 7}, 5);
  const Tensor weight = random_tensor(Shape{4, 1, 3, 3}, 6);
  nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  p.groups = 4;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);
  check_executes_exactly(layer, input, weight, expected, sim_array(8));
}

TEST(ExecuteLayer, PointwiseConv) {
  const LayerDesc layer = nn::make_pointwise("pw", 6, 5, 5, 9);
  const Tensor input = random_tensor(Shape{1, 6, 5, 5}, 7);
  const Tensor weight = random_tensor(Shape{9, 6, 1, 1}, 8);
  const Tensor expected = nn::conv2d(input, weight, nullptr, {});
  check_executes_exactly(layer, input, weight, expected, sim_array(8));
}

TEST(ExecuteLayer, FuseRowBranch) {
  const LayerDesc layer = nn::make_fuse_row("row", 3, 6, 6, 3, 1, 1);
  const Tensor input = random_tensor(Shape{1, 3, 6, 6}, 9);
  const Tensor weight = random_tensor(Shape{3, 1, 1, 3}, 10);
  nn::Conv2dParams p;
  p.pad_w = 1;
  p.groups = 3;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);
  check_executes_exactly(layer, input, weight, expected, sim_array(8));
}

TEST(ExecuteLayer, FuseColBranch) {
  const LayerDesc layer = nn::make_fuse_col("col", 3, 6, 6, 5, 1, 2);
  const Tensor input = random_tensor(Shape{1, 3, 6, 6}, 11);
  const Tensor weight = random_tensor(Shape{3, 1, 5, 1}, 12);
  nn::Conv2dParams p;
  p.pad_h = 2;
  p.groups = 3;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);
  check_executes_exactly(layer, input, weight, expected, sim_array(8));
}

TEST(ExecuteLayer, FullyConnected) {
  const LayerDesc layer = nn::make_fully_connected("fc", 12, 7,
                                                   /*bias=*/false);
  const Tensor input = random_tensor(Shape{1, 12, 1, 1}, 13);
  const Tensor weight = random_tensor(Shape{7, 12}, 14);
  const Tensor expected =
      nn::linear(input.reshaped(Shape{1, 12}), weight, nullptr)
          .reshaped(Shape{1, 7, 1, 1});
  check_executes_exactly(layer, input, weight, expected, sim_array(8));
}

TEST(ExecuteLayer, StridedFuseRowComputesDenseAndDiscards) {
  // Stride 2: the array computes the dense output along the row and the
  // scatter keeps every second value — numerically identical to the
  // strided grouped conv, temporally identical to the dense-compute model.
  const LayerDesc layer = nn::make_fuse_row("row", 4, 8, 8, 3, 2, 1);
  const Tensor input = random_tensor(Shape{1, 4, 8, 8}, 15);
  const Tensor weight = random_tensor(Shape{4, 1, 1, 3}, 16);
  nn::Conv2dParams p;
  p.stride_h = 2;
  p.stride_w = 2;
  p.pad_w = 1;
  p.groups = 4;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);
  check_executes_exactly(layer, input, weight, expected, sim_array(8));
}

TEST(ExecuteLayer, StridedFuseColComputesDenseAndDiscards) {
  const LayerDesc layer = nn::make_fuse_col("col", 4, 9, 9, 3, 3, 1);
  const Tensor input = random_tensor(Shape{1, 4, 9, 9}, 17);
  const Tensor weight = random_tensor(Shape{4, 1, 3, 1}, 18);
  nn::Conv2dParams p;
  p.stride_h = 3;
  p.stride_w = 3;
  p.pad_h = 1;
  p.groups = 4;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);
  check_executes_exactly(layer, input, weight, expected, sim_array(8));
}

TEST(ExecuteLayer, GlueOpsRejected) {
  LayerDesc pool;
  pool.kind = OpKind::kGlobalAvgPool;
  pool.name = "pool";
  pool.in_c = pool.out_c = 4;
  pool.in_h = pool.in_w = 4;
  pool.out_h = pool.out_w = 1;
  EXPECT_THROW(execute_layer_on_array(pool, Tensor(Shape{1, 4, 4, 4}),
                                      Tensor(Shape{1}), sim_array(8)),
               util::Error);
}

TEST(ExecuteLayer, BatchGreaterThanOneRejected) {
  const LayerDesc layer = nn::make_pointwise("pw", 3, 4, 4, 3);
  EXPECT_THROW(execute_layer_on_array(layer, Tensor(Shape{2, 3, 4, 4}),
                                      Tensor(Shape{3, 3, 1, 1}),
                                      sim_array(8)),
               util::Error);
}

// --- whole-block simulation: the paper's comparison, fully measured ----------

TEST(ExecuteBlock, SeparableBlockVsFuseBlockMeasuredOnArray) {
  // A depthwise separable block (dw3x3 + pw) and its FuSe-Half drop-in
  // replacement (row+col 1-D + pw), both executed end-to-end on the
  // simulated array with real data. The FuSe block must (a) produce the
  // geometry the following pointwise expects and (b) be several times
  // faster in *measured* cycles.
  const std::int64_t channels = 8, hw = 12, out_c = 16;
  const ArrayConfig cfg = sim_array(16);
  util::Rng rng(17);

  const Tensor input = random_tensor(Shape{1, channels, hw, hw}, 18);
  const Tensor pw_weight =
      random_tensor(Shape{out_c, channels, 1, 1}, 19);

  // Baseline: depthwise then pointwise, both on the array.
  const LayerDesc dw = nn::make_depthwise("dw", channels, hw, hw, 3, 1, 1);
  const Tensor dw_weight = random_tensor(Shape{channels, 1, 3, 3}, 20);
  const LayerExecution dw_exec =
      execute_layer_on_array(dw, input, dw_weight, cfg);
  const LayerDesc pw = nn::make_pointwise("pw", channels, hw, hw, out_c);
  const LayerExecution base_pw_exec =
      execute_layer_on_array(pw, dw_exec.output, pw_weight, cfg);
  const std::uint64_t baseline_cycles =
      dw_exec.cycles + base_pw_exec.cycles;

  // FuSe-Half: row branch on channels [0, C/2), col branch on the rest,
  // concatenated, then the same pointwise.
  core::FuseConvSpec spec;
  spec.channels = channels;
  spec.in_h = hw;
  spec.in_w = hw;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = core::FuseVariant::kHalf;
  const core::FuseConvStage stage(spec, rng);

  const LayerDesc row =
      nn::make_fuse_row("row", channels / 2, hw, hw, 3, 1, 1);
  const LayerDesc col =
      nn::make_fuse_col("col", channels / 2, hw, hw, 3, 1, 1);
  const Tensor row_input = core::slice_channels(input, 0, channels / 2);
  const Tensor col_input =
      core::slice_channels(input, channels / 2, channels / 2);
  const LayerExecution row_exec =
      execute_layer_on_array(row, row_input, stage.row_weights(), cfg);
  const LayerExecution col_exec =
      execute_layer_on_array(col, col_input, stage.col_weights(), cfg);
  const Tensor fuse_out =
      nn::concat_channels(row_exec.output, col_exec.output);

  // Simulated FuSe stage output must equal the reference stage forward.
  EXPECT_TRUE(allclose(fuse_out, stage.forward(input), 1e-3F, 1e-4F));

  const LayerExecution fuse_pw_exec =
      execute_layer_on_array(pw, fuse_out, pw_weight, cfg);
  const std::uint64_t fuse_cycles =
      row_exec.cycles + col_exec.cycles + fuse_pw_exec.cycles;

  EXPECT_GT(baseline_cycles, 2 * fuse_cycles)
      << "baseline " << baseline_cycles << " vs fuse " << fuse_cycles;
}

TEST(ExecuteLayer, WorksUnderWeightStationaryToo) {
  // The executor inherits the configured dataflow for matmul-shaped work.
  ArrayConfig cfg = sim_array(8);
  cfg.dataflow = systolic::Dataflow::kWeightStationary;
  const LayerDesc layer = nn::make_pointwise("pw", 6, 5, 5, 9);
  const Tensor input = random_tensor(Shape{1, 6, 5, 5}, 21);
  const Tensor weight = random_tensor(Shape{9, 6, 1, 1}, 22);
  const Tensor expected = nn::conv2d(input, weight, nullptr, {});
  check_executes_exactly(layer, input, weight, expected, cfg);
}

}  // namespace
}  // namespace fuse::sched
