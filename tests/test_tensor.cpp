// Unit tests for the tensor module: Shape, Tensor, fp16 emulation, im2col.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/half.hpp"
#include "tensor/im2col.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace fuse::tensor {
namespace {

// --- Shape ------------------------------------------------------------------

TEST(Shape, RankAndDims) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, NumElements) {
  EXPECT_EQ((Shape{2, 3, 4}).num_elements(), 24);
  EXPECT_EQ((Shape{5}).num_elements(), 5);
  EXPECT_EQ(Shape().num_elements(), 1);
  EXPECT_EQ((Shape{3, 0, 2}).num_elements(), 0);
}

TEST(Shape, RowMajorStrides) {
  const auto strides = (Shape{2, 3, 4}).strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
}

TEST(Shape, NegativeExtentThrows) {
  EXPECT_THROW(Shape({2, -1}), util::Error);
}

TEST(Shape, OutOfRangeAxisThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), util::Error);
  EXPECT_THROW(s.dim(-3), util::Error);
}

TEST(Shape, ToString) {
  EXPECT_EQ((Shape{1, 32, 112, 112}).to_string(), "[1, 32, 112, 112]");
}

// --- Tensor -----------------------------------------------------------------

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{2, 3});
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    EXPECT_EQ(t[i], 0.0F);
  }
}

TEST(Tensor, ExplicitValuesRoundTrip) {
  const Tensor t(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0F);
  EXPECT_EQ(t.at(0, 1), 2.0F);
  EXPECT_EQ(t.at(1, 0), 3.0F);
  EXPECT_EQ(t.at(1, 1), 4.0F);
}

TEST(Tensor, ValueCountMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), util::Error);
}

TEST(Tensor, Rank4AccessorRowMajor) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0F;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0F);
}

TEST(Tensor, FillAndSum) {
  Tensor t(Shape{4, 4});
  t.fill(0.5F);
  EXPECT_DOUBLE_EQ(t.sum(), 8.0);
}

TEST(Tensor, FillIota) {
  Tensor t(Shape{3});
  t.fill_iota(10.0F);
  EXPECT_EQ(t.at(0), 10.0F);
  EXPECT_EQ(t.at(2), 12.0F);
}

TEST(Tensor, AbsMax) {
  const Tensor t(Shape{3}, {-7.0F, 2.0F, 5.0F});
  EXPECT_EQ(t.abs_max(), 7.0F);
}

TEST(Tensor, FillUniformRespectsBounds) {
  util::Rng rng(3);
  Tensor t(Shape{1000});
  t.fill_uniform(rng, -2.0F, 3.0F);
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    EXPECT_GE(t[i], -2.0F);
    EXPECT_LT(t[i], 3.0F);
  }
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3});
  t.fill_iota();
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.at(2, 1), 5.0F);
}

TEST(Tensor, ReshapeCountMismatchThrows) {
  const Tensor t(Shape{2, 3});
  EXPECT_THROW(t.reshaped(Shape{7}), util::Error);
}

TEST(Tensor, SummaryTruncates) {
  Tensor t(Shape{100});
  const std::string s = t.summary(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// --- allclose / max_abs_diff ------------------------------------------------

TEST(AllClose, ExactMatch) {
  const Tensor a(Shape{2}, {1.0F, 2.0F});
  EXPECT_TRUE(allclose(a, a));
}

TEST(AllClose, WithinTolerance) {
  const Tensor a(Shape{1}, {1.0F});
  const Tensor b(Shape{1}, {1.0F + 1e-7F});
  EXPECT_TRUE(allclose(a, b));
}

TEST(AllClose, OutsideTolerance) {
  const Tensor a(Shape{1}, {1.0F});
  const Tensor b(Shape{1}, {1.01F});
  EXPECT_FALSE(allclose(a, b));
}

TEST(AllClose, ShapeMismatchIsFalse) {
  EXPECT_FALSE(allclose(Tensor(Shape{2}), Tensor(Shape{3})));
}

TEST(AllClose, NanIsNeverClose) {
  const Tensor a(Shape{1}, {std::numeric_limits<float>::quiet_NaN()});
  EXPECT_FALSE(allclose(a, a));
}

TEST(MaxAbsDiff, ReportsLargestDeviation) {
  const Tensor a(Shape{3}, {1, 2, 3});
  const Tensor b(Shape{3}, {1, 4, 3});
  EXPECT_EQ(max_abs_diff(a, b), 2.0F);
}

// --- half -------------------------------------------------------------------

TEST(Half, ExactSmallIntegersRoundTrip) {
  for (float v : {0.0F, 1.0F, -1.0F, 2.0F, 1024.0F, -2048.0F}) {
    EXPECT_EQ(quantize_half(v), v) << v;
  }
}

TEST(Half, SignedZeroPreserved) {
  EXPECT_EQ(float_to_half(-0.0F), 0x8000);
  EXPECT_EQ(float_to_half(0.0F), 0x0000);
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half(1.0F), 0x3C00);
  EXPECT_EQ(float_to_half(-2.0F), 0xC000);
  EXPECT_EQ(float_to_half(0.5F), 0x3800);
  EXPECT_EQ(half_to_float(0x3C00), 1.0F);
  EXPECT_EQ(half_to_float(0x7C00), std::numeric_limits<float>::infinity());
}

TEST(Half, OverflowBecomesInfinity) {
  EXPECT_EQ(float_to_half(70000.0F), 0x7C00);
  EXPECT_EQ(float_to_half(-70000.0F), 0xFC00);
}

TEST(Half, MaxFiniteValue) {
  EXPECT_EQ(half_to_float(0x7BFF), 65504.0F);
  EXPECT_EQ(float_to_half(65504.0F), 0x7BFF);
}

TEST(Half, NanSurvives) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(quantize_half(nan)));
}

TEST(Half, DenormalsRepresented) {
  // Smallest positive half denormal is 2^-24.
  const float tiny = std::ldexp(1.0F, -24);
  EXPECT_EQ(quantize_half(tiny), tiny);
  // Half of that rounds to zero (round-to-nearest-even).
  EXPECT_EQ(quantize_half(std::ldexp(1.0F, -26)), 0.0F);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; ties go to even
  // (1.0).
  const float halfway = 1.0F + std::ldexp(1.0F, -11);
  EXPECT_EQ(quantize_half(halfway), 1.0F);
  // Slightly above halfway rounds up.
  const float above = 1.0F + std::ldexp(1.0F, -11) + std::ldexp(1.0F, -13);
  EXPECT_EQ(quantize_half(above), 1.0F + std::ldexp(1.0F, -10));
}

TEST(Half, RelativeErrorBounded) {
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1000.0, 1000.0));
    const float q = quantize_half(v);
    // Half has 11 significand bits: relative error <= 2^-11.
    EXPECT_LE(std::fabs(q - v), std::fabs(v) * std::ldexp(1.0F, -11) + 1e-8F)
        << v;
  }
}

TEST(Half, QuantizeTensor) {
  Tensor t(Shape{3}, {1.0F, 1.0001F, 100000.0F});
  const Tensor q = quantize_half(t);
  EXPECT_EQ(q.at(0), 1.0F);
  EXPECT_EQ(q.at(1), 1.0F);  // below half precision
  EXPECT_TRUE(std::isinf(q.at(2)));
  EXPECT_EQ(t.at(1), 1.0001F);  // original untouched
}

// --- conv_out_dim -----------------------------------------------------------

TEST(ConvOutDim, BasicCases) {
  EXPECT_EQ(conv_out_dim(5, 3, 1, 0), 3);
  EXPECT_EQ(conv_out_dim(5, 3, 1, 1), 5);   // 'same'
  EXPECT_EQ(conv_out_dim(224, 3, 2, 1), 112);
  EXPECT_EQ(conv_out_dim(7, 7, 1, 0), 1);
  EXPECT_EQ(conv_out_dim(5, 3, 1, 0, 2), 1);  // dilation 2: span 5
}

TEST(ConvOutDim, KernelLargerThanPaddedInputThrows) {
  EXPECT_THROW(conv_out_dim(2, 5, 1, 0), util::Error);
}

TEST(ConvOutDim, InvalidArgsThrow) {
  EXPECT_THROW(conv_out_dim(0, 3, 1, 0), util::Error);
  EXPECT_THROW(conv_out_dim(5, 3, 0, 0), util::Error);
  EXPECT_THROW(conv_out_dim(5, 3, 1, -1), util::Error);
}

// --- im2col -----------------------------------------------------------------

TEST(Im2col, SingleChannelIdentityKernel) {
  // 1x1 kernel: patches are just the input values, one per row.
  Tensor input(Shape{1, 2, 3});
  input.fill_iota();
  const Tensor patches = im2col(input, 1, 1, 1, 1, 0, 0);
  EXPECT_EQ(patches.shape(), (Shape{6, 1}));
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(patches.at(i, 0), static_cast<float>(i));
  }
}

TEST(Im2col, PatchContentsMatchReceptiveField) {
  // 3x3 input, 2x2 kernel, no padding: 4 patches.
  Tensor input(Shape{1, 3, 3});
  input.fill_iota();  // 0..8 row-major
  const Tensor patches = im2col(input, 2, 2, 1, 1, 0, 0);
  EXPECT_EQ(patches.shape(), (Shape{4, 4}));
  // Patch at output (0,0) covers inputs {0,1,3,4}.
  EXPECT_EQ(patches.at(0, 0), 0.0F);
  EXPECT_EQ(patches.at(0, 1), 1.0F);
  EXPECT_EQ(patches.at(0, 2), 3.0F);
  EXPECT_EQ(patches.at(0, 3), 4.0F);
  // Patch at output (1,1) covers inputs {4,5,7,8}.
  EXPECT_EQ(patches.at(3, 0), 4.0F);
  EXPECT_EQ(patches.at(3, 3), 8.0F);
}

TEST(Im2col, PaddingReadsZero) {
  Tensor input(Shape{1, 2, 2});
  input.fill(1.0F);
  const Tensor patches = im2col(input, 3, 3, 1, 1, 1, 1);
  EXPECT_EQ(patches.shape(), (Shape{4, 9}));
  // Top-left output patch: corners outside the input are zero.
  EXPECT_EQ(patches.at(0, 0), 0.0F);  // (-1,-1)
  EXPECT_EQ(patches.at(0, 4), 1.0F);  // (0,0)
}

TEST(Im2col, StrideSkipsPositions) {
  Tensor input(Shape{1, 5, 5});
  input.fill_iota();
  const Tensor patches = im2col(input, 3, 3, 2, 2, 0, 0);
  EXPECT_EQ(patches.shape(), (Shape{4, 9}));
  // Second patch starts at input column 2.
  EXPECT_EQ(patches.at(1, 0), 2.0F);
}

TEST(Im2col, MultiChannelTapOrdering) {
  // Channel-major ordering within a row: [C, Kh, Kw] flattened.
  Tensor input(Shape{2, 2, 2});
  input.fill_iota();  // ch0: 0..3, ch1: 4..7
  const Tensor patches = im2col(input, 2, 2, 1, 1, 0, 0);
  EXPECT_EQ(patches.shape(), (Shape{1, 8}));
  EXPECT_EQ(patches.at(0, 0), 0.0F);
  EXPECT_EQ(patches.at(0, 3), 3.0F);
  EXPECT_EQ(patches.at(0, 4), 4.0F);
  EXPECT_EQ(patches.at(0, 7), 7.0F);
}

TEST(Im2col, DepthwiseLoweringHasSingleColumnShape) {
  // The paper's Fig. 2(c): per-channel im2col of a KxK depthwise layer
  // yields a [positions, K*K] matrix multiplied by a K*K x 1 filter —
  // a single output column.
  Tensor plane(Shape{8, 8});
  plane.fill_iota();
  const Tensor patches = im2col_plane(plane, 3, 3, 1, 1, 1, 1);
  EXPECT_EQ(patches.shape(), (Shape{64, 9}));
}

TEST(Im2col, RejectsWrongRank) {
  EXPECT_THROW(im2col(Tensor(Shape{2, 2}), 1, 1, 1, 1, 0, 0), util::Error);
  EXPECT_THROW(im2col_plane(Tensor(Shape{1, 2, 2}), 1, 1, 1, 1, 0, 0),
               util::Error);
}

}  // namespace
}  // namespace fuse::tensor
