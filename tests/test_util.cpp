// Unit tests for the util module.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace fuse::util {
namespace {

// --- check ------------------------------------------------------------------

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(FUSE_CHECK(1 + 1 == 2) << "unused");
}

TEST(Check, FailingConditionThrowsError) {
  EXPECT_THROW(FUSE_CHECK(false) << "context", Error);
}

TEST(Check, MessageCarriesExpressionAndContext) {
  try {
    const int value = 42;
    FUSE_CHECK(value < 0) << "value=" << value;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value < 0"), std::string::npos) << what;
    EXPECT_NE(what.find("value=42"), std::string::npos) << what;
  }
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformWithBoundsStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(8);
    EXPECT_LT(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalHasRoughlyZeroMeanUnitVariance) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

// --- strings ----------------------------------------------------------------

TEST(Strings, FormatProducesPrintfOutput) {
  EXPECT_EQ(format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
}

TEST(Strings, FormatHandlesLongOutput) {
  const std::string long_str(500, 'a');
  EXPECT_EQ(format("%s", long_str.c_str()).size(), 500u);
}

TEST(Strings, WithCommasGroupsDigits) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1000000000ULL), "1,000,000,000");
}

TEST(Strings, FixedFormatsPrecision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Strings, SplitOnDelimiter) {
  const auto fields = split("a,b,,c", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "c");
}

TEST(Strings, SplitKeepsTrailingEmptyField) {
  const auto fields = split("a,", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "");
}

TEST(Strings, ToLowerOnlyTouchesAscii) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("fuseconv", "fuse"));
  EXPECT_FALSE(starts_with("fu", "fuse"));
}

// --- csv --------------------------------------------------------------------

TEST(Csv, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRowsToFile) {
  const std::string path = testing::TempDir() + "/fuse_csv_test.csv";
  {
    CsvWriter writer(path);
    writer.write_header({"name", "value"});
    writer.write_row({"a,b", "1"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "name,value");
  EXPECT_EQ(line2, "\"a,b\",1");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), Error);
}

// --- table ------------------------------------------------------------------

TEST(Table, AlignsColumnsToWidestCell) {
  TablePrinter table({"net", "speedup"});
  table.add_row({"MobileNet-V1", "6.76x"});
  table.add_row({"V2", "7.23x"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| MobileNet-V1 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| V2           |"), std::string::npos) << out;
}

TEST(Table, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_NO_THROW(table.to_string());
}

TEST(Table, SeparatorRendersFullWidth) {
  TablePrinter table({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.to_string();
  // header top + below header + mid separator + bottom = 4 separators
  int count = 0;
  for (std::size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 4);
}

// --- cli --------------------------------------------------------------------

TEST(Cli, ParsesTypedFlags) {
  CliFlags flags;
  flags.add_int("size", 64, "array size");
  flags.add_string("net", "v2", "network");
  flags.add_double("ratio", 0.5, "ratio");
  flags.add_bool("csv", false, "emit csv");
  const char* argv[] = {"prog",        "--size=32", "--net", "v1",
                        "--ratio=2.5", "--csv"};
  flags.parse(6, argv);
  EXPECT_EQ(flags.get_int("size"), 32);
  EXPECT_EQ(flags.get_string("net"), "v1");
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 2.5);
  EXPECT_TRUE(flags.get_bool("csv"));
}

TEST(Cli, DefaultsSurviveWhenNotPassed) {
  CliFlags flags;
  flags.add_int("size", 64, "array size");
  const char* argv[] = {"prog"};
  flags.parse(1, argv);
  EXPECT_EQ(flags.get_int("size"), 64);
}

TEST(Cli, UnknownFlagThrows) {
  CliFlags flags;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(flags.parse(2, argv), Error);
}

TEST(Cli, BadIntValueThrows) {
  CliFlags flags;
  flags.add_int("size", 64, "array size");
  const char* argv[] = {"prog", "--size=abc"};
  EXPECT_THROW(flags.parse(2, argv), Error);
}

TEST(Cli, BoolAcceptsExplicitValues) {
  CliFlags flags;
  flags.add_bool("csv", false, "emit csv");
  const char* argv[] = {"prog", "--csv=TRUE"};
  flags.parse(2, argv);
  EXPECT_TRUE(flags.get_bool("csv"));
}

TEST(Cli, CollectsPositionalArguments) {
  CliFlags flags;
  flags.add_bool("csv", false, "emit csv");
  const char* argv[] = {"prog", "pos1", "--csv", "pos2"};
  const auto positional = flags.parse(4, argv);
  ASSERT_EQ(positional.size(), 2u);
  EXPECT_EQ(positional[0], "pos1");
  EXPECT_EQ(positional[1], "pos2");
}

TEST(Cli, TypeMismatchOnGetThrows) {
  CliFlags flags;
  flags.add_int("size", 64, "array size");
  EXPECT_THROW(flags.get_string("size"), Error);
}

TEST(Cli, UsageListsFlags) {
  CliFlags flags;
  flags.add_int("size", 64, "array size");
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--size"), std::string::npos);
  EXPECT_NE(usage.find("array size"), std::string::npos);
}


TEST(Cli, HelpPrintsUsageAndExitsZero) {
  CliFlags flags;
  flags.add_int("size", 64, "array size");
  const char* argv[] = {"prog", "--help"};
  // (The usage text goes to stdout; EXPECT_EXIT's matcher sees stderr, so
  // only the exit code is asserted here.)
  EXPECT_EXIT(flags.parse(2, argv), ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace fuse::util
