// Unit tests for the LayerDesc IR: factories, MAC/param counting, the
// paper's operation-count formulas.
#include <gtest/gtest.h>

#include "nn/layer.hpp"
#include "util/check.hpp"

namespace fuse::nn {
namespace {

TEST(LayerFactory, ConvGeometry) {
  const LayerDesc l = make_conv("stem", 3, 224, 224, 32, 3, 2, 1);
  EXPECT_EQ(l.kind, OpKind::kStandardConv);
  EXPECT_EQ(l.out_c, 32);
  EXPECT_EQ(l.out_h, 112);
  EXPECT_EQ(l.out_w, 112);
  EXPECT_EQ(l.groups, 1);
  EXPECT_TRUE(l.has_batchnorm);
}

TEST(LayerFactory, DepthwisePreservesChannels) {
  const LayerDesc l = make_depthwise("dw", 32, 112, 112, 3, 1, 1);
  EXPECT_EQ(l.kind, OpKind::kDepthwiseConv);
  EXPECT_EQ(l.in_c, 32);
  EXPECT_EQ(l.out_c, 32);
  EXPECT_EQ(l.groups, 32);
  EXPECT_EQ(l.out_h, 112);
}

TEST(LayerFactory, PointwiseIs1x1) {
  const LayerDesc l = make_pointwise("pw", 32, 112, 112, 64);
  EXPECT_EQ(l.kind, OpKind::kPointwiseConv);
  EXPECT_EQ(l.kernel_h, 1);
  EXPECT_EQ(l.kernel_w, 1);
  EXPECT_EQ(l.out_h, 112);
}

TEST(LayerFactory, FuseRowGeometryMatchesDepthwise) {
  // 1xK with full 2-D stride and horizontal-only padding must produce the
  // same output size as the KxK depthwise it replaces, for 'same' padding.
  for (std::int64_t stride : {1, 2}) {
    for (std::int64_t k : {3, 5}) {
      const std::int64_t pad = k / 2;
      const LayerDesc dw = make_depthwise("dw", 16, 28, 28, k, stride, pad);
      const LayerDesc row = make_fuse_row("row", 16, 28, 28, k, stride, pad);
      const LayerDesc col = make_fuse_col("col", 16, 28, 28, k, stride, pad);
      EXPECT_EQ(row.out_h, dw.out_h) << "k=" << k << " s=" << stride;
      EXPECT_EQ(row.out_w, dw.out_w);
      EXPECT_EQ(col.out_h, dw.out_h);
      EXPECT_EQ(col.out_w, dw.out_w);
      EXPECT_EQ(row.kernel_h, 1);
      EXPECT_EQ(row.kernel_w, k);
      EXPECT_EQ(col.kernel_h, k);
      EXPECT_EQ(col.kernel_w, 1);
    }
  }
}

TEST(LayerFactory, FullyConnected) {
  const LayerDesc l = make_fully_connected("fc", 1024, 1000);
  EXPECT_EQ(l.kind, OpKind::kFullyConnected);
  EXPECT_TRUE(l.has_bias);
  EXPECT_EQ(l.in_c, 1024);
  EXPECT_EQ(l.out_c, 1000);
}

TEST(LayerFactory, InvalidGeometryThrows) {
  EXPECT_THROW(make_conv("x", 0, 10, 10, 4, 3, 1, 1), util::Error);
  EXPECT_THROW(make_fully_connected("x", 0, 10), util::Error);
}

// --- MAC counting -----------------------------------------------------------

TEST(LayerMacs, StandardConvFormula) {
  // N*M*C'*K^2*C (paper §II-D).
  const LayerDesc l = make_conv("c", 16, 28, 28, 32, 3, 1, 1);
  EXPECT_EQ(l.macs(), 28ULL * 28 * 32 * 3 * 3 * 16);
}

TEST(LayerMacs, DepthwiseFormula) {
  // N*M*C*K^2.
  const LayerDesc l = make_depthwise("dw", 64, 14, 14, 3, 1, 1);
  EXPECT_EQ(l.macs(), 14ULL * 14 * 64 * 9);
}

TEST(LayerMacs, PointwiseFormula) {
  // N*M*C*C'.
  const LayerDesc l = make_pointwise("pw", 64, 14, 14, 128);
  EXPECT_EQ(l.macs(), 14ULL * 14 * 128 * 64);
}

TEST(LayerMacs, DepthwiseSeparableTotalMatchesPaperFormula) {
  // Paper: depthwise separable has N*M*C*(K^2 + C') operations.
  const std::int64_t c = 32, hw = 56, k = 3, c_out = 64;
  const LayerDesc dw = make_depthwise("dw", c, hw, hw, k, 1, k / 2);
  const LayerDesc pw = make_pointwise("pw", c, hw, hw, c_out);
  EXPECT_EQ(dw.macs() + pw.macs(),
            static_cast<std::uint64_t>(hw) * hw * c * (k * k + c_out));
}

TEST(LayerMacs, FuseStagePlusPointwiseMatchesPaperFormula) {
  // Paper: FuSeConv has (2/D)*N*M*C*(K + C') operations. For D=2 each 1-D
  // branch handles C/2 channels; the pointwise keeps C input channels.
  const std::int64_t c = 32, hw = 56, k = 3, c_out = 64;
  const LayerDesc row = make_fuse_row("r", c / 2, hw, hw, k, 1, k / 2);
  const LayerDesc col = make_fuse_col("c", c / 2, hw, hw, k, 1, k / 2);
  const LayerDesc pw = make_pointwise("pw", c, hw, hw, c_out);
  EXPECT_EQ(row.macs() + col.macs() + pw.macs(),
            static_cast<std::uint64_t>(hw) * hw * c * (k + c_out));
}

TEST(LayerMacs, FullVariantDoublesBothTerms) {
  // D=1: branches on all C channels, pointwise sees 2C inputs:
  // 2*N*M*C*(K + C').
  const std::int64_t c = 32, hw = 56, k = 3, c_out = 64;
  const LayerDesc row = make_fuse_row("r", c, hw, hw, k, 1, k / 2);
  const LayerDesc col = make_fuse_col("c", c, hw, hw, k, 1, k / 2);
  const LayerDesc pw = make_pointwise("pw", 2 * c, hw, hw, c_out);
  EXPECT_EQ(row.macs() + col.macs() + pw.macs(),
            2ULL * hw * hw * c * (k + c_out));
}

TEST(LayerMacs, FullyConnected) {
  const LayerDesc l = make_fully_connected("fc", 1024, 1000);
  EXPECT_EQ(l.macs(), 1024ULL * 1000);
}

TEST(LayerMacs, GlueOpsAreZero) {
  LayerDesc pool;
  pool.kind = OpKind::kGlobalAvgPool;
  pool.out_c = 32;
  pool.out_h = 1;
  pool.out_w = 1;
  EXPECT_EQ(pool.macs(), 0u);
  EXPECT_EQ(pool.params(), 0u);
}

// --- param counting ---------------------------------------------------------

TEST(LayerParams, ConvWeightsPlusBatchnorm) {
  const LayerDesc l = make_conv("c", 16, 28, 28, 32, 3, 1, 1);
  EXPECT_EQ(l.params(), 32ULL * 16 * 9 + 2 * 32);
}

TEST(LayerParams, DepthwisePaperFormula) {
  // Depthwise stage of the separable layer: C*K^2 weights (+BN).
  const LayerDesc l = make_depthwise("dw", 64, 14, 14, 3, 1, 1);
  EXPECT_EQ(l.params(), 64ULL * 9 + 2 * 64);
}

TEST(LayerParams, FuseStagePaperFormula) {
  // (2/D)*C*K weights for the 1-D stage (D=2 here: 2*(C/2)*K = C*K).
  const LayerDesc row = make_fuse_row("r", 16, 14, 14, 3, 1, 1);
  const LayerDesc col = make_fuse_col("c", 16, 14, 14, 3, 1, 1);
  const std::uint64_t weights_only =
      row.params() - 2 * 16 + col.params() - 2 * 16;
  EXPECT_EQ(weights_only, 2ULL * 16 * 3);
}

TEST(LayerParams, FcBias) {
  const LayerDesc l = make_fully_connected("fc", 100, 10);
  EXPECT_EQ(l.params(), 100ULL * 10 + 10);
}

// --- misc -------------------------------------------------------------------

TEST(LayerDescMisc, LatencyEligibility) {
  EXPECT_TRUE(op_kind_counts_for_latency(OpKind::kStandardConv));
  EXPECT_TRUE(op_kind_counts_for_latency(OpKind::kDepthwiseConv));
  EXPECT_TRUE(op_kind_counts_for_latency(OpKind::kFuseRowConv));
  EXPECT_TRUE(op_kind_counts_for_latency(OpKind::kFullyConnected));
  EXPECT_FALSE(op_kind_counts_for_latency(OpKind::kAvgPool));
  EXPECT_FALSE(op_kind_counts_for_latency(OpKind::kActivation));
  EXPECT_FALSE(op_kind_counts_for_latency(OpKind::kElementwiseAdd));
}

TEST(LayerDescMisc, KindNamesAreUnique) {
  EXPECT_EQ(op_kind_name(OpKind::kDepthwiseConv), "dw");
  EXPECT_EQ(op_kind_name(OpKind::kFuseRowConv), "fuse-row");
  EXPECT_NE(op_kind_name(OpKind::kStandardConv),
            op_kind_name(OpKind::kPointwiseConv));
}

TEST(LayerDescMisc, ToStringMentionsGeometry) {
  const LayerDesc l = make_conv("net/stem", 3, 224, 224, 32, 3, 2, 1);
  const std::string s = l.to_string();
  EXPECT_NE(s.find("net/stem"), std::string::npos);
  EXPECT_NE(s.find("k=3x3"), std::string::npos);
}

TEST(LayerDescMisc, Totals) {
  std::vector<LayerDesc> layers = {
      make_pointwise("a", 8, 4, 4, 16),
      make_fully_connected("b", 16, 10),
  };
  EXPECT_EQ(total_macs(layers), layers[0].macs() + layers[1].macs());
  EXPECT_EQ(total_params(layers), layers[0].params() + layers[1].params());
}

}  // namespace
}  // namespace fuse::nn
