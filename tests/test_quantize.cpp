// Tests for the INT8 quantization extension: affine quantization math,
// INT8 kernels vs their float references, and the quantized FuSeConv
// forward pass.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fuseconv.hpp"
#include "nn/quantized.hpp"
#include "tensor/quantize.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fuse::tensor {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = -1.0F,
                     float hi = 1.0F) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, lo, hi);
  return t;
}

TEST(QuantParams, RoundTripErrorBoundedByHalfScale) {
  const Tensor t = random_tensor(Shape{1000}, 1, -3.0F, 5.0F);
  const QuantParams params = choose_quant_params(t);
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    const float back = params.dequantize(params.quantize(t[i]));
    EXPECT_LE(std::fabs(back - t[i]), 0.5F * params.scale + 1e-6F) << t[i];
  }
}

TEST(QuantParams, SymmetricHasZeroZeroPoint) {
  const Tensor t = random_tensor(Shape{100}, 2, -0.4F, 0.9F);
  const QuantParams params = choose_quant_params(t, /*symmetric=*/true);
  EXPECT_EQ(params.zero_point, 0);
  EXPECT_NEAR(params.scale, 0.9F / 127.0F, 0.01F);
}

TEST(QuantParams, RangeIncludesZeroSoPaddingIsExact) {
  // All-positive data: zero must still quantize exactly (padding!).
  const Tensor t = random_tensor(Shape{100}, 3, 2.0F, 6.0F);
  const QuantParams params = choose_quant_params(t);
  EXPECT_NEAR(params.dequantize(params.quantize(0.0F)), 0.0F,
              0.5F * params.scale);
}

TEST(QuantParams, ConstantTensorHandled) {
  Tensor t(Shape{4});
  t.fill(0.0F);
  const QuantParams params = choose_quant_params(t);
  EXPECT_GT(params.scale, 0.0F);
  EXPECT_EQ(params.quantize(0.0F), params.zero_point);
}

TEST(QuantParams, SaturatesAtInt8Limits) {
  QuantParams params;
  params.scale = 0.1F;
  params.zero_point = 0;
  EXPECT_EQ(params.quantize(100.0F), 127);
  EXPECT_EQ(params.quantize(-100.0F), -128);
}

TEST(QuantizedTensor, DequantizeRoundTrip) {
  const Tensor t = random_tensor(Shape{3, 4}, 4);
  const QuantizedTensor q = quantize_calibrated(t);
  const Tensor back = dequantize(q);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_LT(max_abs_diff(back, t), q.params.scale);
}

TEST(QuantizedTensor, InvalidScaleThrows) {
  QuantParams bad;
  bad.scale = 0.0F;
  EXPECT_THROW(quantize(Tensor(Shape{2}), bad), util::Error);
}

}  // namespace
}  // namespace fuse::tensor

namespace fuse::nn {
namespace {

using tensor::QuantizedTensor;
using tensor::Shape;
using tensor::Tensor;
using tensor::quantize_calibrated;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

/// Error bound for an INT8 conv output: each of the `taps` products has
/// quantization error ~<= 0.5*(s_in*|w| + s_w*|x|); use a loose uniform
/// bound instead.
float int8_tolerance(std::int64_t taps, float in_scale, float w_scale) {
  return static_cast<float>(taps) * (in_scale + w_scale) * 0.7F;
}

TEST(Conv2dInt8, CloseToFloatConv) {
  const Tensor input = random_tensor(Shape{1, 3, 8, 8}, 11);
  const Tensor weight = random_tensor(Shape{4, 3, 3, 3}, 12);
  Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  const Tensor expected = conv2d(input, weight, nullptr, p);

  const QuantizedTensor q_in = quantize_calibrated(input);
  const QuantizedTensor q_w = quantize_calibrated(weight, true);
  const Tensor actual = conv2d_int8(q_in, q_w, p);

  EXPECT_EQ(actual.shape(), expected.shape());
  EXPECT_LT(tensor::max_abs_diff(actual, expected),
            int8_tolerance(27, q_in.params.scale, q_w.params.scale));
  // And it is far more accurate than doing nothing: outputs correlate.
  EXPECT_LT(tensor::max_abs_diff(actual, expected),
            0.05F * expected.abs_max() + 0.05F);
}

TEST(Conv2dInt8, DepthwiseGroupsWork) {
  const Tensor input = random_tensor(Shape{1, 4, 6, 6}, 13);
  const Tensor weight = random_tensor(Shape{4, 1, 3, 3}, 14);
  Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  p.groups = 4;
  const Tensor expected = conv2d(input, weight, nullptr, p);
  const Tensor actual = conv2d_int8(quantize_calibrated(input),
                                    quantize_calibrated(weight, true), p);
  EXPECT_LT(tensor::max_abs_diff(actual, expected), 0.1F);
}

TEST(Conv2dInt8, StridedAndAsymmetricKernels) {
  // A FuSe row branch shape: 1x3 kernel, stride 2.
  const Tensor input = random_tensor(Shape{1, 2, 8, 8}, 15);
  const Tensor weight = random_tensor(Shape{2, 1, 1, 3}, 16);
  Conv2dParams p;
  p.stride_h = 2;
  p.stride_w = 2;
  p.pad_w = 1;
  p.groups = 2;
  const Tensor expected = conv2d(input, weight, nullptr, p);
  const Tensor actual = conv2d_int8(quantize_calibrated(input),
                                    quantize_calibrated(weight, true), p);
  EXPECT_LT(tensor::max_abs_diff(actual, expected), 0.06F);
}

TEST(Conv2dInt8, RequiresSymmetricWeights) {
  const Tensor input = random_tensor(Shape{1, 1, 4, 4}, 17);
  // Shift weights so affine calibration produces a non-zero zero point.
  const Tensor weight = random_tensor(Shape{1, 1, 3, 3}, 18);
  Tensor shifted = weight;
  for (std::int64_t i = 0; i < shifted.num_elements(); ++i) {
    shifted[i] += 10.0F;
  }
  const QuantizedTensor q_w = quantize_calibrated(shifted, false);
  ASSERT_NE(q_w.params.zero_point, 0);
  EXPECT_THROW(conv2d_int8(quantize_calibrated(input), q_w, {}),
               util::Error);
}

TEST(LinearInt8, CloseToFloatLinear) {
  const Tensor input = random_tensor(Shape{2, 16}, 19);
  const Tensor weight = random_tensor(Shape{5, 16}, 20);
  const Tensor expected = linear(input, weight, nullptr);
  const Tensor actual = linear_int8(quantize_calibrated(input),
                                    quantize_calibrated(weight, true));
  EXPECT_LT(tensor::max_abs_diff(actual, expected), 0.08F);
}

}  // namespace
}  // namespace fuse::nn

namespace fuse::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(FuseConvInt8, CloseToFp32Forward) {
  FuseConvSpec spec;
  spec.channels = 8;
  spec.in_h = 10;
  spec.in_w = 10;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  for (FuseVariant variant : {FuseVariant::kFull, FuseVariant::kHalf}) {
    spec.variant = variant;
    util::Rng rng(21);
    const FuseConvStage stage(spec, rng);
    Tensor input(Shape{1, 8, 10, 10});
    input.fill_uniform(rng, -1.0F, 1.0F);
    const Tensor fp32 = stage.forward(input);
    const Tensor int8 = fuseconv_forward_int8(stage, input);
    EXPECT_EQ(int8.shape(), fp32.shape());
    // K=3 taps per output: tight error budget.
    EXPECT_LT(tensor::max_abs_diff(int8, fp32), 0.08F)
        << fuse_variant_name(variant);
  }
}

TEST(FuseConvInt8, StridedVariant) {
  FuseConvSpec spec;
  spec.channels = 4;
  spec.in_h = 8;
  spec.in_w = 8;
  spec.kernel = 3;
  spec.stride = 2;
  spec.pad = 1;
  spec.variant = FuseVariant::kHalf;
  util::Rng rng(22);
  const FuseConvStage stage(spec, rng);
  Tensor input(Shape{1, 4, 8, 8});
  input.fill_uniform(rng, -1.0F, 1.0F);
  EXPECT_LT(
      tensor::max_abs_diff(fuseconv_forward_int8(stage, input),
                           stage.forward(input)),
      0.08F);
}

}  // namespace
}  // namespace fuse::core
