// Tests for the design-space explorer (dse/pareto.hpp, dse/explore.hpp):
// dominance edge cases (ties, exact equality, single-point frontiers),
// incremental pruning bookkeeping, axis enumeration, and frontier
// determinism across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dse/explore.hpp"
#include "dse/pareto.hpp"
#include "nn/ops.hpp"

namespace fuse::dse {
namespace {

Objectives make_obj(double lat, double area, double power) {
  Objectives o;
  o.latency_ms = lat;
  o.area_mm2 = area;
  o.power_w = power;
  return o;
}

// --- dominance ---------------------------------------------------------------

TEST(Dominates, StrictOnAllAxes) {
  EXPECT_TRUE(dominates(make_obj(1, 1, 1), make_obj(2, 2, 2)));
  EXPECT_FALSE(dominates(make_obj(2, 2, 2), make_obj(1, 1, 1)));
}

TEST(Dominates, TieOnOneAxisStillDominates) {
  // Equal latency, strictly better area/power.
  EXPECT_TRUE(dominates(make_obj(1, 1, 1), make_obj(1, 2, 2)));
  // Equal on two axes, better on one.
  EXPECT_TRUE(dominates(make_obj(1, 1, 0.5), make_obj(1, 1, 1)));
}

TEST(Dominates, ExactlyEqualPointsDoNotDominate) {
  const Objectives a = make_obj(1, 2, 3);
  EXPECT_FALSE(dominates(a, a));
}

TEST(Dominates, TradeoffIsIncomparable) {
  // Better latency, worse area: neither dominates.
  EXPECT_FALSE(dominates(make_obj(1, 3, 1), make_obj(2, 2, 1)));
  EXPECT_FALSE(dominates(make_obj(2, 2, 1), make_obj(1, 3, 1)));
}

// --- ParetoFront -------------------------------------------------------------

TEST(ParetoFront, SinglePointFrontier) {
  ParetoFront front;
  EXPECT_TRUE(front.offer(0, make_obj(1, 1, 1)));
  ASSERT_EQ(front.entries().size(), 1u);
  EXPECT_EQ(front.entries()[0].id, 0u);
  EXPECT_EQ(front.pruned(), 0u);
}

TEST(ParetoFront, DominatedOfferRejected) {
  ParetoFront front;
  EXPECT_TRUE(front.offer(0, make_obj(1, 1, 1)));
  EXPECT_FALSE(front.offer(1, make_obj(2, 2, 2)));
  EXPECT_EQ(front.entries().size(), 1u);
  EXPECT_EQ(front.pruned(), 1u);
}

TEST(ParetoFront, NewPointEvictsDominated) {
  ParetoFront front;
  EXPECT_TRUE(front.offer(0, make_obj(3, 3, 3)));
  EXPECT_TRUE(front.offer(1, make_obj(4, 1, 1)));  // incomparable: stays
  EXPECT_TRUE(front.offer(2, make_obj(2, 2, 2)));  // evicts 0, not 1
  ASSERT_EQ(front.entries().size(), 2u);
  EXPECT_EQ(front.entries()[0].id, 1u);  // survivor order preserved
  EXPECT_EQ(front.entries()[1].id, 2u);
  EXPECT_EQ(front.pruned(), 1u);
}

TEST(ParetoFront, EqualPointsBothSurvive) {
  ParetoFront front;
  EXPECT_TRUE(front.offer(0, make_obj(1, 2, 3)));
  EXPECT_TRUE(front.offer(1, make_obj(1, 2, 3)));
  EXPECT_EQ(front.entries().size(), 2u);
  EXPECT_EQ(front.pruned(), 0u);
}

TEST(ParetoFrontier, BatchMatchesIncremental) {
  const std::vector<Objectives> objs = {
      make_obj(3, 3, 3), make_obj(1, 4, 1), make_obj(2, 2, 2),
      make_obj(2, 2, 2),  // duplicate of the previous: both survive
      make_obj(5, 5, 5),  // dominated
  };
  const std::vector<std::size_t> ids = pareto_frontier(objs);
  EXPECT_EQ(ids, (std::vector<std::size_t>{1, 2, 3}));
}

// --- axis enumeration --------------------------------------------------------

TEST(Enumerate, FullGridSizeAndOrderStable) {
  const DseAxes axes;
  const std::vector<DesignPoint> points = enumerate_design_points(axes);
  // 5 shapes x 2 broadcast x 3 pipelining x 3 datapath x 2 sram.
  EXPECT_EQ(points.size(), 180u);
  // Shape-major nested order: the first block shares the first shape.
  EXPECT_EQ(points[0].cfg.rows, 16);
  EXPECT_EQ(points[0].cfg.cols, 256);
  EXPECT_FALSE(points[0].cfg.broadcast_links);
  // Memory dtype always paired to the datapath.
  for (const DesignPoint& p : points) {
    EXPECT_EQ(p.mem.dtype_bytes, p.cfg.datapath_bytes());
    EXPECT_EQ(p.cfg.pe_count(), 64 * 64);
  }
}

TEST(Enumerate, LabelsAreUnique) {
  const std::vector<DesignPoint> points =
      enumerate_design_points(DseAxes{});
  std::vector<std::string> labels;
  for (const DesignPoint& p : points) {
    labels.push_back(p.label());
  }
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(std::unique(labels.begin(), labels.end()), labels.end());
}

// --- explore determinism -----------------------------------------------------

// A cut-down grid over a small workload: the frontier (ids, order, and
// objective values) must be identical at thread counts 1, 2, and 4, and
// with the memo cache off.
TEST(Explore, FrontierDeterministicAcrossThreads) {
  DseAxes axes;
  axes.shapes = {{32, 128}, {64, 64}};
  axes.datapaths = {systolic::Datapath::kFp16};
  axes.sram_bytes = {8 * 1024 * 1024};
  // 2 shapes x 2 broadcast x 3 pipelining = 12 points.

  nets::NetworkModel model =
      nets::build_network(nets::NetworkId::kMobileNetV3Small);
  const std::vector<nets::NetworkModel> workload = {model};

  ExploreResult reference;
  bool have_reference = false;
  for (int threads : {1, 2, 4}) {
    for (bool use_cache : {true, false}) {
      ExploreOptions options;
      options.threads = threads;
      options.use_cache = use_cache;
      const ExploreResult result = explore(axes, workload, options);
      EXPECT_EQ(result.points.size(), 12u);
      if (!have_reference) {
        reference = result;
        have_reference = true;
        continue;
      }
      ASSERT_EQ(result.objectives.size(), reference.objectives.size());
      for (std::size_t i = 0; i < result.objectives.size(); ++i) {
        EXPECT_EQ(result.objectives[i].latency_ms,
                  reference.objectives[i].latency_ms);
        EXPECT_EQ(result.bound_cycles[i], reference.bound_cycles[i]);
      }
      ASSERT_EQ(result.front.entries().size(),
                reference.front.entries().size());
      for (std::size_t i = 0; i < result.front.entries().size(); ++i) {
        EXPECT_EQ(result.front.entries()[i].id,
                  reference.front.entries()[i].id);
      }
      EXPECT_EQ(result.front.pruned(), reference.front.pruned());
    }
  }
}

// The frontier must never be empty on a non-empty grid, and every
// non-frontier point must be dominated by some frontier member.
TEST(Explore, FrontierCoversGrid) {
  DseAxes axes;
  axes.shapes = {{64, 64}};
  axes.pipelinings = {systolic::Pipelining::kPipelined};
  // 1 shape x 2 broadcast x 1 pipelining x 3 datapath x 2 sram = 12.
  const std::vector<nets::NetworkModel> workload = {
      nets::build_network(nets::NetworkId::kMobileNetV3Small)};
  ExploreOptions options;
  options.threads = 1;
  const ExploreResult result = explore(axes, workload, options);
  ASSERT_FALSE(result.front.entries().empty());
  std::vector<bool> on_front(result.points.size(), false);
  for (const ParetoEntry& entry : result.front.entries()) {
    on_front[entry.id] = true;
  }
  for (std::size_t i = 0; i < result.objectives.size(); ++i) {
    if (on_front[i]) {
      continue;
    }
    bool dominated = false;
    for (const ParetoEntry& entry : result.front.entries()) {
      if (dominates(entry.obj, result.objectives[i])) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << "point " << i
                           << " missing from frontier but undominated";
  }
}

}  // namespace
}  // namespace fuse::dse
