// Tests for the network-level FuSe transform policy.
#include <gtest/gtest.h>

#include "core/transform.hpp"
#include "util/check.hpp"

namespace fuse::core {
namespace {

TEST(VariantNames, MatchPaperLabels) {
  EXPECT_EQ(network_variant_name(NetworkVariant::kBaseline), "baseline");
  EXPECT_EQ(network_variant_name(NetworkVariant::kFuseFull), "FuSe-Full");
  EXPECT_EQ(network_variant_name(NetworkVariant::kFuseHalf), "FuSe-Half");
  EXPECT_EQ(network_variant_name(NetworkVariant::kFuseFull50),
            "FuSe-Full-50%");
  EXPECT_EQ(network_variant_name(NetworkVariant::kFuseHalf50),
            "FuSe-Half-50%");
}

TEST(VariantNames, AllVariantsListedInTableOrder) {
  const auto& variants = all_network_variants();
  ASSERT_EQ(variants.size(), 5u);
  EXPECT_EQ(variants[0], NetworkVariant::kBaseline);
  EXPECT_EQ(variants[4], NetworkVariant::kFuseHalf50);
}

TEST(FuseModeVariant, MapsToDKnob) {
  EXPECT_EQ(fuse_mode_variant(FuseMode::kFull), FuseVariant::kFull);
  EXPECT_EQ(fuse_mode_variant(FuseMode::kHalf), FuseVariant::kHalf);
  EXPECT_THROW(fuse_mode_variant(FuseMode::kBaseline), util::Error);
}

TEST(UniformModes, FillsEverySlot) {
  const auto modes = uniform_modes(5, FuseMode::kFull);
  EXPECT_EQ(modes.size(), 5u);
  for (FuseMode m : modes) {
    EXPECT_EQ(m, FuseMode::kFull);
  }
}

TEST(TopHalfModes, PicksLargestSavings) {
  const std::vector<double> savings = {10.0, 50.0, 5.0, 40.0};
  const auto modes = top_half_modes(savings, FuseMode::kHalf);
  ASSERT_EQ(modes.size(), 4u);
  EXPECT_EQ(modes[0], FuseMode::kBaseline);
  EXPECT_EQ(modes[1], FuseMode::kHalf);
  EXPECT_EQ(modes[2], FuseMode::kBaseline);
  EXPECT_EQ(modes[3], FuseMode::kHalf);
}

TEST(TopHalfModes, OddCountRoundsUp) {
  const std::vector<double> savings = {3.0, 1.0, 2.0};
  const auto modes = top_half_modes(savings, FuseMode::kFull);
  int replaced = 0;
  for (FuseMode m : modes) {
    if (m == FuseMode::kFull) {
      ++replaced;
    }
  }
  EXPECT_EQ(replaced, 2);  // ceil(3/2)
  EXPECT_EQ(modes[0], FuseMode::kFull);
  EXPECT_EQ(modes[2], FuseMode::kFull);
  EXPECT_EQ(modes[1], FuseMode::kBaseline);
}

TEST(TopHalfModes, QuotaFilledEvenWithNegativeSavings) {
  // The paper replaces exactly 50%; slots with negative savings fill the
  // quota last.
  const std::vector<double> savings = {-5.0, -1.0};
  const auto modes = top_half_modes(savings, FuseMode::kFull);
  EXPECT_EQ(modes[0], FuseMode::kBaseline);
  EXPECT_EQ(modes[1], FuseMode::kFull);
}

TEST(TopHalfModes, StableOnTies) {
  const std::vector<double> savings = {1.0, 1.0, 1.0, 1.0};
  const auto modes = top_half_modes(savings, FuseMode::kFull);
  // stable_sort keeps index order: first two slots replaced.
  EXPECT_EQ(modes[0], FuseMode::kFull);
  EXPECT_EQ(modes[1], FuseMode::kFull);
  EXPECT_EQ(modes[2], FuseMode::kBaseline);
  EXPECT_EQ(modes[3], FuseMode::kBaseline);
}

TEST(TopHalfModes, RejectsBaselineMode) {
  EXPECT_THROW(top_half_modes({1.0}, FuseMode::kBaseline), util::Error);
}

TEST(ModesForVariant, BaselineNeedsNoSavings) {
  const auto modes =
      modes_for_variant(NetworkVariant::kBaseline, 3, {});
  for (FuseMode m : modes) {
    EXPECT_EQ(m, FuseMode::kBaseline);
  }
}

TEST(ModesForVariant, FullReplacesEverything) {
  const auto modes = modes_for_variant(NetworkVariant::kFuseFull, 4, {});
  for (FuseMode m : modes) {
    EXPECT_EQ(m, FuseMode::kFull);
  }
}

TEST(ModesForVariant, FiftyPercentNeedsSavings) {
  EXPECT_THROW(modes_for_variant(NetworkVariant::kFuseFull50, 3, {}),
               util::Error);
  const auto modes = modes_for_variant(NetworkVariant::kFuseHalf50, 3,
                                       {1.0, 3.0, 2.0});
  int replaced = 0;
  for (FuseMode m : modes) {
    if (m == FuseMode::kHalf) {
      ++replaced;
    }
  }
  EXPECT_EQ(replaced, 2);
  EXPECT_EQ(modes[1], FuseMode::kHalf);
}

}  // namespace
}  // namespace fuse::core
