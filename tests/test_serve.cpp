// Serving-engine contract: deadline-bounded batching, admission control
// and load shedding, clean drains with work in flight, and — the property
// everything else leans on — byte-determinism of every scheduling decision
// and payload checksum across worker thread counts (1/2/4; tools/check.sh
// runs this suite under ThreadSanitizer and AddressSanitizer).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "sched/netplan.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/model_pool.hpp"
#include "serve/request.hpp"
#include "systolic/config.hpp"
#include "systolic/memory.hpp"
#include "util/check.hpp"

namespace fuse::serve {
namespace {

using systolic::MemoryConfig;

/// A tiny chain-executable model: conv -> depthwise -> pointwise.
nets::NetworkModel small_chain() {
  nets::NetworkModel model;
  model.name = "chain-a";
  model.layers.push_back(nn::make_conv("c1", 3, 8, 8, 4, 3, 1, 1));
  model.layers.push_back(nn::make_depthwise("dw1", 4, 8, 8, 3, 1, 1));
  model.layers.push_back(nn::make_pointwise("pw1", 4, 8, 8, 6));
  return model;
}

/// A second chain shape (different geometry) for multi-tenant traces.
nets::NetworkModel other_chain() {
  nets::NetworkModel model;
  model.name = "chain-b";
  model.layers.push_back(nn::make_depthwise("dw1", 5, 6, 6, 3, 1, 1));
  model.layers.push_back(nn::make_pointwise("pw1", 5, 6, 6, 3));
  return model;
}

/// Pool over a small array (fast plans, fast simulation).
ModelPool make_pool() {
  return ModelPool(systolic::square_array(8), MemoryConfig{});
}

ShapeKey custom_key(int index) {
  ShapeKey key;
  key.custom = index;
  return key;
}

/// Serializes every response field so determinism checks are byte-wise.
std::string fingerprint(const ServeEngine& engine) {
  std::ostringstream out;
  for (std::uint64_t id = 0; id < engine.num_requests(); ++id) {
    const ResponseRecord r = engine.response(id);
    out << r.id << '|' << shape_key_name(r.key) << '|'
        << request_status_name(r.status) << '|' << r.arrival_cycle << '|'
        << r.dispatch_cycle << '|' << r.start_cycle << '|'
        << r.completion_cycle << '|' << r.batch_id << '|' << r.batch_size
        << '|' << r.array_index << '|' << r.checksum << '\n';
  }
  return out.str();
}

TEST(ModelPool, ChainExecutabilityClassification) {
  EXPECT_TRUE(is_chain_executable(small_chain()));
  EXPECT_TRUE(is_chain_executable(other_chain()));
  // Zoo networks carry pool/residual glue, so they serve in cycle mode
  // only.
  EXPECT_FALSE(is_chain_executable(
      nets::build_network(nets::NetworkId::kMobileNetV2)));
}

TEST(ModelPool, ServiceCyclesMatchesRooflineAtBatchOne) {
  ModelPool pool = make_pool();
  const ShapeKey key{nets::NetworkId::kMobileNetV1,
                     core::NetworkVariant::kBaseline, 224, -1};
  const ModelEntry& entry = pool.entry(key);
  // In the default per-layer schedule the batched bound at batch 1 is
  // exactly the plan's roofline bound: same lowering, same traffic model.
  EXPECT_EQ(pool.service_cycles(key, 1),
            sched::plan_roofline(entry.plan).bound_cycles);
  EXPECT_EQ(pool.entries(), 1u);
  pool.entry(key);  // memoized: repeat lookups do not rebuild
  EXPECT_EQ(pool.entries(), 1u);
}

TEST(ModelPool, BatchingAmortizesTheRooflineBound) {
  ModelPool pool = make_pool();
  const ShapeKey key{nets::NetworkId::kMobileNetV1,
                     core::NetworkVariant::kFuseFull, 32, -1};
  const std::uint64_t b1 = pool.service_cycles(key, 1);
  const std::uint64_t b8 = pool.service_cycles(key, 8);
  // Weight traffic streams once per batch, so 8 batched inferences cost
  // strictly less than 8 serial ones (the mechanism bench_serve measures).
  EXPECT_LT(b8, 8 * b1);
  EXPECT_GE(b8, b1);  // still at least one inference's work
}

TEST(ModelPool, ScaledResolutionRejectsUnsupportedNetworks) {
  ModelPool pool = make_pool();
  const ShapeKey key{nets::NetworkId::kMnasNetB1,
                     core::NetworkVariant::kBaseline, 64, -1};
  EXPECT_THROW(pool.entry(key), util::Error);
}

TEST(ServeEngine, ZeroWindowIsPureFifo) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeConfig config;
  config.batch_window = 0;
  config.max_batch = 8;
  ServeEngine engine(config, &pool);
  const std::uint64_t service = pool.service_cycles(key, 1);
  for (int i = 0; i < 4; ++i) {
    engine.submit(key, 0, 0);
  }
  engine.drain();
  for (std::uint64_t id = 0; id < 4; ++id) {
    const ResponseRecord r = engine.response(id);
    EXPECT_EQ(r.status, RequestStatus::kCompleted);
    EXPECT_EQ(r.batch_size, 1) << "zero window must not batch";
    EXPECT_EQ(r.batch_id, id) << "FIFO dispatch order";
    // One array serves back to back: request i starts when i-1 finishes.
    EXPECT_EQ(r.start_cycle, id * service);
    EXPECT_EQ(r.completion_cycle, (id + 1) * service);
  }
}

TEST(ServeEngine, WindowCoalescesAndDeadlineAnchorsToFirstArrival) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeConfig config;
  config.batch_window = 100;
  config.max_batch = 8;
  ServeEngine engine(config, &pool);
  engine.submit(key, 0, 10);
  engine.submit(key, 0, 50);
  engine.submit(key, 0, 90);
  engine.drain();
  for (std::uint64_t id = 0; id < 3; ++id) {
    const ResponseRecord r = engine.response(id);
    EXPECT_EQ(r.status, RequestStatus::kCompleted);
    EXPECT_EQ(r.batch_size, 3);
    EXPECT_EQ(r.batch_id, 0u);
    EXPECT_EQ(r.dispatch_cycle, 110u) << "deadline = first arrival + window";
  }
  // Batched service is the batch-3 roofline bound, not 3x the batch-1 one.
  EXPECT_EQ(engine.response(0).completion_cycle,
            110 + pool.service_cycles(key, 3));
}

TEST(ServeEngine, BatchClosesEarlyAtTheCap) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeConfig config;
  config.batch_window = 1000;
  config.max_batch = 2;
  ServeEngine engine(config, &pool);
  engine.submit(key, 0, 5);
  engine.submit(key, 0, 7);  // cap reached: dispatch now, not at 1005
  engine.submit(key, 0, 8);  // opens a fresh batch
  engine.drain();
  EXPECT_EQ(engine.response(0).dispatch_cycle, 7u);
  EXPECT_EQ(engine.response(1).dispatch_cycle, 7u);
  EXPECT_EQ(engine.response(0).batch_size, 2);
  EXPECT_EQ(engine.response(2).batch_id, 1u);
  EXPECT_EQ(engine.response(2).dispatch_cycle, 1008u);
}

TEST(ServeEngine, PositiveBatchHintTightensTheCap) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeConfig config;
  config.batch_window = 1000;
  config.max_batch = 8;
  ServeEngine engine(config, &pool);
  engine.submit(key, 2, 0);  // hint 2: this batch caps at 2 members
  engine.submit(key, 0, 1);
  engine.submit(key, 0, 2);
  engine.drain();
  EXPECT_EQ(engine.response(0).batch_size, 2);
  EXPECT_EQ(engine.response(1).batch_size, 2);
  EXPECT_EQ(engine.response(0).dispatch_cycle, 1u);
  EXPECT_EQ(engine.response(2).batch_size, 1);
}

TEST(ServeEngine, QueueFullRejectsNewestByDefault) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeConfig config;
  config.batch_window = 1000;
  config.max_batch = 8;
  config.queue_capacity = 2;
  ServeEngine engine(config, &pool);
  engine.submit(key, 0, 0);
  engine.submit(key, 0, 0);
  const std::uint64_t shed = engine.submit(key, 0, 0);
  EXPECT_EQ(engine.response(shed).status, RequestStatus::kRejected);
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(engine.response(0).batch_size, 2);
}

TEST(ServeEngine, RejectOldestEvictsQueuedAndKeepsTheDeadline) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeConfig config;
  config.batch_window = 1000;
  config.max_batch = 8;
  config.queue_capacity = 2;
  config.shed = ShedPolicy::kRejectOldest;
  ServeEngine engine(config, &pool);
  engine.submit(key, 0, 10);  // id 0: the eventual victim
  engine.submit(key, 0, 20);
  engine.submit(key, 0, 30);  // evicts id 0, takes its slot
  engine.drain();
  EXPECT_EQ(engine.response(0).status, RequestStatus::kRejected);
  EXPECT_EQ(engine.response(1).status, RequestStatus::kCompleted);
  EXPECT_EQ(engine.response(2).status, RequestStatus::kCompleted);
  // The batch keeps the window promise anchored at the ORIGINAL opener.
  EXPECT_EQ(engine.response(1).dispatch_cycle, 1010u);
  EXPECT_EQ(engine.response(1).batch_size, 2);
}

TEST(ServeEngine, RejectOldestFallsBackWhenNothingIsQueued) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeConfig config;
  config.batch_window = 0;  // every admit dispatches immediately
  config.queue_capacity = 1;
  config.shed = ShedPolicy::kRejectOldest;
  ServeEngine engine(config, &pool);
  engine.submit(key, 0, 0);  // dispatched (in flight, not queued)
  const std::uint64_t shed = engine.submit(key, 0, 0);
  EXPECT_EQ(engine.response(shed).status, RequestStatus::kRejected);
  engine.drain();
  EXPECT_EQ(engine.response(0).status, RequestStatus::kCompleted);
}

TEST(ServeEngine, CapacityFreedByRetirementReadmits) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeConfig config;
  config.batch_window = 0;
  config.queue_capacity = 1;
  ServeEngine engine(config, &pool);
  const std::uint64_t service = pool.service_cycles(key, 1);
  engine.submit(key, 0, 0);
  // Arrives after the first completes: the advance inside submit retires
  // it, freeing the single slot.
  const std::uint64_t second = engine.submit(key, 0, service);
  EXPECT_NE(engine.response(second).status, RequestStatus::kRejected);
  engine.drain();
  EXPECT_EQ(engine.stats().completed, 2u);
}

TEST(ServeEngine, DrainWithInFlightAndQueuedWorkCompletesEverything) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeConfig config;
  config.mode = ExecMode::kTensor;  // payload tasks genuinely in flight
  config.batch_window = 500;
  config.max_batch = 4;
  config.workers = 2;
  ServeEngine engine(config, &pool);
  engine.submit(key, 0, 0);
  engine.submit(key, 0, 1);
  engine.submit(key, 0, 600);  // dispatches the first batch, opens another
  engine.drain();  // second batch still open, first possibly in flight
  for (std::uint64_t id = 0; id < 3; ++id) {
    EXPECT_EQ(engine.response(id).status, RequestStatus::kCompleted);
    EXPECT_NE(engine.response(id).checksum, 0u) << "payload must have run";
  }
  // The engine stays usable after a drain.
  const std::uint64_t more = engine.submit(key, 0, engine.now());
  engine.drain();
  EXPECT_EQ(engine.response(more).status, RequestStatus::kCompleted);
  EXPECT_NE(engine.response(more).checksum, 0u);
}

TEST(ServeEngine, ArrivalsMustBeNondecreasing) {
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));
  ServeEngine engine(ServeConfig{}, &pool);
  engine.submit(key, 0, 100);
  EXPECT_THROW(engine.submit(key, 0, 99), util::Error);
}

TEST(ServeEngine, TensorModeRejectsNonChainShapes) {
  ModelPool pool = make_pool();
  ServeConfig config;
  config.mode = ExecMode::kTensor;
  ServeEngine engine(config, &pool);
  const ShapeKey zoo{nets::NetworkId::kMobileNetV2,
                     core::NetworkVariant::kBaseline, 224, -1};
  EXPECT_THROW(engine.submit(zoo, 0, 0), util::Error);
}

TEST(ServeEngine, BatchedChecksumsMatchStandaloneRuns) {
  // Batch composition must not change any request's numerics: a request's
  // slice of a batched pass is bit-identical to its own batch-1 run, in
  // BOTH execution backends. (Tensor and simulate checksums differ from
  // each other — the PE grid accumulates in a different order, and the
  // backends agree only to tolerance; test_execute pins that.)
  ModelPool pool = make_pool();
  const ShapeKey key = custom_key(pool.register_custom(small_chain()));

  const auto run = [&pool, &key](ExecMode mode, std::uint64_t window,
                                 int workers) {
    ServeConfig config;
    config.mode = mode;
    config.batch_window = window;
    config.max_batch = 4;
    config.workers = workers;
    ServeEngine engine(config, &pool);
    for (int i = 0; i < 4; ++i) {
      engine.submit(key, 0, 0);
    }
    engine.drain();
    std::vector<std::uint64_t> sums;
    for (std::uint64_t id = 0; id < 4; ++id) {
      EXPECT_EQ(engine.response(id).batch_size, window == 0 ? 1 : 4);
      sums.push_back(engine.response(id).checksum);
    }
    return sums;
  };

  const auto batched_tensor = run(ExecMode::kTensor, 100, 2);
  const auto single_tensor = run(ExecMode::kTensor, 0, 2);
  const auto batched_sim = run(ExecMode::kSimulate, 100, 2);
  const auto single_sim = run(ExecMode::kSimulate, 0, 1);
  EXPECT_EQ(batched_tensor, single_tensor)
      << "batching must not change tensor-mode numerics";
  EXPECT_EQ(batched_sim, single_sim)
      << "batching must not change simulate-mode numerics";
  for (const std::uint64_t sum : batched_tensor) {
    EXPECT_NE(sum, 0u);
  }
  for (const std::uint64_t sum : batched_sim) {
    EXPECT_NE(sum, 0u);
  }
}

TEST(ServeEngine, ResponsesAreByteDeterministicAcrossWorkerCounts) {
  // The acceptance-criteria pin: one mixed trace (two tenants, hints,
  // shedding, two arrays), replayed at workers 1/2/4 — identical bytes.
  ModelPool pool = make_pool();
  const ShapeKey key_a = custom_key(pool.register_custom(small_chain()));
  const ShapeKey key_b = custom_key(pool.register_custom(other_chain()));
  const std::vector<TraceShape> shapes = {
      TraceShape{key_a, 0, 3},
      TraceShape{key_b, 2, 1},
  };
  const std::vector<TraceEntry> trace =
      make_open_loop_trace(48, 40, shapes, 0xfeedULL);

  std::string reference;
  ServeStats reference_stats;
  for (const int workers : {1, 2, 4}) {
    ServeConfig config;
    config.mode = ExecMode::kTensor;
    config.batch_window = 120;
    config.max_batch = 4;
    config.queue_capacity = 6;  // small: the trace must shed sometimes
    config.num_arrays = 2;
    config.workers = workers;
    ServeEngine engine(config, &pool);
    replay_trace(engine, trace);
    engine.drain();
    const std::string print = fingerprint(engine);
    const ServeStats stats = engine.stats();
    if (reference.empty()) {
      reference = print;
      reference_stats = stats;
      EXPECT_GT(stats.completed, 0u);
    } else {
      EXPECT_EQ(print, reference) << "workers=" << workers;
      EXPECT_EQ(stats.p99_latency_cycles, reference_stats.p99_latency_cycles);
      EXPECT_EQ(stats.makespan_cycles, reference_stats.makespan_cycles);
    }
  }
}

TEST(ServeEngine, StatsPercentilesAreExactOrderStatistics) {
  const std::vector<std::uint64_t> sorted = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7}, 0.99), 7.0);
}

TEST(LoadGen, OpenLoopTraceIsDeterministicAndSorted) {
  const std::vector<TraceShape> shapes = {TraceShape{custom_key(0), 0, 1}};
  const auto a = make_open_loop_trace(100, 25, shapes, 42);
  const auto b = make_open_loop_trace(100, 25, shapes, 42);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_cycle, b[i].arrival_cycle);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_cycle, a[i - 1].arrival_cycle);
    }
  }
  const auto c = make_open_loop_trace(100, 25, shapes, 43);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].arrival_cycle != c[i].arrival_cycle;
  }
  EXPECT_TRUE(differs) << "different seeds should give different traces";
}

TEST(LoadGen, ClosedLoopBatchingBeatsBatchOneThroughput) {
  // The bench_serve claim in miniature: same shape, same total work, same
  // arrays — batched serving finishes the closed-loop run in fewer cycles
  // than batch-1 serving.
  ModelPool pool = make_pool();
  const ShapeKey key{nets::NetworkId::kMobileNetV1,
                     core::NetworkVariant::kFuseFull, 32, -1};
  constexpr std::int64_t kTotal = 32;

  ServeConfig batch1;
  batch1.batch_window = 0;
  batch1.max_batch = 1;
  batch1.queue_capacity = 64;
  ServeEngine engine1(batch1, &pool);
  const ClosedLoopResult r1 = run_closed_loop(engine1, key, 0, 8, kTotal);

  ServeConfig batched = batch1;
  batched.batch_window = 50;
  batched.max_batch = 8;
  ServeEngine engine8(batched, &pool);
  const ClosedLoopResult r8 = run_closed_loop(engine8, key, 0, 8, kTotal);

  EXPECT_EQ(r1.completed, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(r8.completed, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(r1.rejected, 0u);
  EXPECT_EQ(r8.rejected, 0u);
  EXPECT_LT(r8.makespan_cycles, r1.makespan_cycles);
  EXPECT_GT(engine8.stats().mean_batch_size, 1.0);
}

}  // namespace
}  // namespace fuse::serve
