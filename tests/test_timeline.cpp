// Tests for the execution timeline and batched latency extensions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sched/timeline.hpp"
#include "util/check.hpp"

namespace fuse::sched {
namespace {

using nets::NetworkId;
using nn::OpKind;

ArrayConfig paper_array() { return systolic::square_array(64); }

// --- timeline -----------------------------------------------------------------

TEST(Timeline, IntervalsAreContiguousAndCoverTotal) {
  const auto model = nets::build_network(NetworkId::kMobileNetV2);
  const auto cfg = paper_array();
  const Timeline timeline = network_timeline(model, cfg);
  ASSERT_FALSE(timeline.entries.empty());
  std::uint64_t cursor = 0;
  for (const TimelineEntry& entry : timeline.entries) {
    EXPECT_EQ(entry.start_cycle, cursor) << entry.name;
    EXPECT_GT(entry.end_cycle, entry.start_cycle) << entry.name;
    cursor = entry.end_cycle;
  }
  EXPECT_EQ(timeline.total_cycles, cursor);
  EXPECT_EQ(timeline.total_cycles,
            network_latency(model, cfg).total_cycles);
}

TEST(Timeline, GlueOpsExcluded) {
  const auto model = nets::build_network(NetworkId::kMobileNetV3Small);
  const Timeline timeline = network_timeline(model, paper_array());
  for (const TimelineEntry& entry : timeline.entries) {
    EXPECT_TRUE(nn::op_kind_counts_for_latency(entry.kind)) << entry.name;
  }
  EXPECT_LT(timeline.entries.size(), model.layers.size());
}

TEST(Timeline, EntriesReferenceTheirLayers) {
  const auto model = nets::build_network(NetworkId::kMobileNetV1);
  const Timeline timeline = network_timeline(model, paper_array());
  for (const TimelineEntry& entry : timeline.entries) {
    ASSERT_LT(entry.layer_index, model.layers.size());
    EXPECT_EQ(entry.name, model.layers[entry.layer_index].name);
    EXPECT_EQ(entry.kind, model.layers[entry.layer_index].kind);
  }
}

TEST(Timeline, CsvRoundTripHasOneRowPerEntry) {
  const auto model = nets::build_network(NetworkId::kMobileNetV3Small);
  const Timeline timeline = network_timeline(model, paper_array());
  const std::string path = testing::TempDir() + "/fuse_timeline.csv";
  write_timeline_csv(timeline, path);
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, timeline.entries.size() + 1);  // + header
  std::remove(path.c_str());
}

TEST(Gantt, EveryEntryGetsALine) {
  const auto model = nets::build_network(NetworkId::kMobileNetV3Small);
  const Timeline timeline = network_timeline(model, paper_array());
  const std::string gantt = ascii_gantt(timeline);
  std::size_t lines = 0;
  for (char c : gantt) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, timeline.entries.size() + 1);  // + total line
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find("total"), std::string::npos);
}

TEST(Gantt, DepthwiseDominatesBaselineVisibly) {
  // The longest bar in the baseline's gantt belongs to a depthwise layer.
  const auto model = nets::build_network(NetworkId::kMobileNetV2);
  const Timeline timeline = network_timeline(model, paper_array());
  const TimelineEntry* longest = &timeline.entries.front();
  for (const TimelineEntry& entry : timeline.entries) {
    if (entry.duration() > longest->duration()) {
      longest = &entry;
    }
  }
  EXPECT_EQ(longest->kind, OpKind::kDepthwiseConv) << longest->name;
}

TEST(Gantt, TooSmallWidthThrows) {
  const auto model = nets::build_network(NetworkId::kMobileNetV3Small);
  const Timeline timeline = network_timeline(model, paper_array());
  EXPECT_THROW(ascii_gantt(timeline, 4), util::Error);
}

// --- batched latency ------------------------------------------------------------

TEST(BatchedLatency, BatchOneMatchesUnbatched) {
  const auto model = nets::build_network(NetworkId::kMnasNetB1);
  const auto cfg = paper_array();
  for (const nn::LayerDesc& layer : model.layers) {
    EXPECT_EQ(layer_latency_batched(layer, cfg, 1).cycles,
              layer_latency(layer, cfg).cycles)
        << layer.name;
  }
  EXPECT_EQ(network_latency_batched(model, cfg, 1),
            network_latency(model, cfg).total_cycles);
}

TEST(BatchedLatency, FullyConnectedUtilizationImprovesWithBatch) {
  const nn::LayerDesc fc = nn::make_fully_connected("fc", 1024, 1000);
  const auto cfg = paper_array();
  const auto b1 = layer_latency_batched(fc, cfg, 1);
  const auto b64 = layer_latency_batched(fc, cfg, 64);
  EXPECT_GT(b64.utilization(), 20 * b1.utilization());
  // Throughput (images per cycle) improves dramatically too.
  EXPECT_LT(b64.cycles, 4 * b1.cycles);  // 64 images for < 4x the time
}

TEST(BatchedLatency, ConvScalesRoughlyLinearly) {
  const nn::LayerDesc conv = nn::make_conv("c", 32, 28, 28, 64, 3, 1, 1);
  const auto cfg = paper_array();
  const auto b1 = layer_latency_batched(conv, cfg, 1);
  const auto b4 = layer_latency_batched(conv, cfg, 4);
  EXPECT_GE(b4.cycles, 3 * b1.cycles);
  EXPECT_LE(b4.cycles, 4 * b1.cycles + 1000);
  EXPECT_EQ(b4.mac_ops, 4 * b1.mac_ops);
}

TEST(BatchedLatency, DepthwisePathologySurvivesBatching) {
  // Batching does NOT fix depthwise: the lowered matrix still has one
  // column, so utilization stays bounded by 1/cols regardless of batch.
  const nn::LayerDesc dw = nn::make_depthwise("dw", 32, 28, 28, 3, 1, 1);
  const auto cfg = paper_array();
  const auto b16 = layer_latency_batched(dw, cfg, 16);
  EXPECT_LT(b16.utilization(), 1.0 / 64);
}

TEST(BatchedLatency, FuseSpeedupHoldsAtBatch) {
  const auto cfg = paper_array();
  const auto base = nets::build_network(NetworkId::kMobileNetV2);
  const auto half = nets::build_network(
      NetworkId::kMobileNetV2,
      core::uniform_modes(17, core::FuseMode::kHalf));
  const double speedup_b8 =
      static_cast<double>(network_latency_batched(base, cfg, 8)) /
      static_cast<double>(network_latency_batched(half, cfg, 8));
  EXPECT_GT(speedup_b8, 5.0);
}

TEST(BatchedLatency, InvalidBatchThrows) {
  const nn::LayerDesc fc = nn::make_fully_connected("fc", 8, 8);
  EXPECT_THROW(layer_latency_batched(fc, paper_array(), 0), util::Error);
}

}  // namespace
}  // namespace fuse::sched
