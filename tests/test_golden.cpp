// Golden regression values: exact deterministic outputs of the latency and
// hardware models, pinned. These are intentionally brittle — any change to
// the cycle model, fold walk, network tables, or calibration constants
// trips them. If you change the model ON PURPOSE, re-run the bench
// binaries, verify the new shape against EXPERIMENTS.md's criteria, and
// update the constants here together with the docs.
#include <gtest/gtest.h>

#include "hw/area_power.hpp"
#include "sched/latency.hpp"

namespace fuse {
namespace {

using nets::NetworkId;

systolic::ArrayConfig paper_array() { return systolic::square_array(64); }

TEST(Golden, BaselineCyclesOn64x64) {
  struct Expected {
    NetworkId id;
    std::uint64_t cycles;
  };
  const Expected expected[] = {
      {NetworkId::kMobileNetV1, 2594775},
      {NetworkId::kMobileNetV2, 3128106},
      {NetworkId::kMnasNetB1, 2984050},
      {NetworkId::kMobileNetV3Small, 738162},
      {NetworkId::kMobileNetV3Large, 2109939},
  };
  for (const Expected& e : expected) {
    const auto model = nets::build_network(e.id);
    EXPECT_EQ(sched::network_latency(model, paper_array()).total_cycles,
              e.cycles)
        << nets::network_name(e.id);
  }
}

TEST(Golden, ResNet50CyclesOn32x32) {
  const auto cfg = systolic::square_array(32);
  EXPECT_EQ(
      sched::network_latency(nets::resnet50(), cfg).total_cycles,
      5182630u);
}

TEST(Golden, MacAndParamTotals) {
  const auto v1 = nets::build_network(NetworkId::kMobileNetV1);
  EXPECT_EQ(v1.total_macs(), 568740352u);
  EXPECT_EQ(v1.total_params(), 4231976u);
  const auto v2 = nets::build_network(NetworkId::kMobileNetV2);
  EXPECT_EQ(v2.total_macs(), 300774272u);
  EXPECT_EQ(v2.total_params(), 3504872u);
}

TEST(Golden, FuseHalfSpeedupsOn64x64) {
  struct Expected {
    NetworkId id;
    double speedup;
  };
  // Pinned to 2 decimals (ratios of pinned integer cycle counts).
  const Expected expected[] = {
      {NetworkId::kMobileNetV1, 7.90},
      {NetworkId::kMobileNetV2, 8.96},
      {NetworkId::kMnasNetB1, 9.30},
      {NetworkId::kMobileNetV3Small, 6.01},
      {NetworkId::kMobileNetV3Large, 6.85},
  };
  for (const Expected& e : expected) {
    EXPECT_NEAR(sched::speedup_vs_baseline(
                    e.id, core::NetworkVariant::kFuseHalf, paper_array()),
                e.speedup, 0.005)
        << nets::network_name(e.id);
  }
}

TEST(Golden, BroadcastOverheadCalibration) {
  const hw::OverheadReport report =
      hw::broadcast_overhead(32, hw::nangate45_model());
  EXPECT_NEAR(report.area_pct, 4.34, 0.01);
  EXPECT_NEAR(report.power_pct, 2.25, 0.01);
}

TEST(Golden, FoldFormulaAnchors) {
  // The documented per-fold cost on canonical shapes.
  systolic::ArrayConfig cfg = paper_array();
  cfg.overlap_fold_drain = false;
  EXPECT_EQ(systolic::matmul_latency(64, 64, 64, cfg).cycles,
            63u + 63 + 64 + 64);
  EXPECT_EQ(systolic::fuse1d_latency(64, 64, 3, cfg).cycles,
            63u + 3 + 64);
}


TEST(Golden, FuseHalfCyclesOn64x64) {
  const auto half = nets::build_network(
      NetworkId::kMobileNetV2,
      core::uniform_modes(17, core::FuseMode::kHalf));
  EXPECT_EQ(sched::network_latency(half, paper_array()).total_cycles,
            349296u);
}

TEST(Golden, V2TrafficBytesAtDefaultMemory) {
  const systolic::MemoryConfig mem;
  const auto model = nets::build_network(NetworkId::kMobileNetV2);
  const auto roofline =
      sched::network_roofline(model, paper_array(), mem);
  EXPECT_EQ(roofline.total_bytes, 80404048u);
}

}  // namespace
}  // namespace fuse
