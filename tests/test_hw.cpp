// Tests for the area/power model: calibration against the paper's
// synthesis result and scaling behaviour.
#include <gtest/gtest.h>

#include "hw/area_power.hpp"
#include "util/check.hpp"

namespace fuse::hw {
namespace {

TEST(Overhead, MatchesPaperAt32x32) {
  // Paper §V-B5: 4.35% area, 2.25% power for a 32x32 array in 45 nm.
  const OverheadReport report = broadcast_overhead(32, nangate45_model());
  EXPECT_NEAR(report.area_pct, 4.35, 0.30);
  EXPECT_NEAR(report.power_pct, 2.25, 0.30);
}

TEST(Overhead, PositiveAtAllSizes) {
  const PeComponentModel model = nangate45_model();
  for (std::int64_t size : {8, 16, 32, 64, 128, 256}) {
    const OverheadReport r = broadcast_overhead(size, model);
    EXPECT_GT(r.area_pct, 0.0) << size;
    EXPECT_GT(r.power_pct, 0.0) << size;
    EXPECT_LT(r.area_pct, 10.0) << size;  // always a small fraction
    EXPECT_LT(r.power_pct, 5.0) << size;
  }
}

TEST(Overhead, PerRowDriverAmortizesWithWidth) {
  // The row driver is shared by all PEs of a row, so the relative overhead
  // decreases slightly as arrays grow.
  const PeComponentModel model = nangate45_model();
  const OverheadReport small = broadcast_overhead(8, model);
  const OverheadReport large = broadcast_overhead(256, model);
  EXPECT_GT(small.area_pct, large.area_pct);
}

TEST(ArrayHw, AreaScalesQuadratically) {
  const PeComponentModel model = nangate45_model();
  const ArrayHwReport a = array_hw(systolic::square_array(16), model);
  const ArrayHwReport b = array_hw(systolic::square_array(32), model);
  // 4x the PEs dominates; edges only double.
  EXPECT_GT(b.area_mm2, 3.5 * a.area_mm2);
  EXPECT_LT(b.area_mm2, 4.1 * a.area_mm2);
}

TEST(ArrayHw, BroadcastVariantIsStrictlyBigger) {
  const PeComponentModel model = nangate45_model();
  const ArrayHwReport with =
      array_hw(systolic::square_array(32, true), model);
  const ArrayHwReport without =
      array_hw(systolic::square_array(32, false), model);
  EXPECT_GT(with.area_mm2, without.area_mm2);
  EXPECT_GT(with.power_mw, without.power_mw);
}

TEST(ArrayHw, NonSquareArraysSupported) {
  const PeComponentModel model = nangate45_model();
  systolic::ArrayConfig cfg;
  cfg.rows = 16;
  cfg.cols = 64;
  const ArrayHwReport r = array_hw(cfg, model);
  EXPECT_GT(r.area_mm2, 0.0);
}

TEST(ArrayHw, PlausibleAbsoluteNumbersFor32x32) {
  // A 1024-PE FP16 array in 45 nm should land in the mm^2 / watt-ish
  // region (TPU-class PEs are larger; this is an edge-scale array).
  const ArrayHwReport r =
      array_hw(systolic::square_array(32, false), nangate45_model());
  EXPECT_GT(r.area_mm2, 0.5);
  EXPECT_LT(r.area_mm2, 10.0);
  EXPECT_GT(r.power_mw, 200.0);
  EXPECT_LT(r.power_mw, 5000.0);
}

TEST(Overhead, InvalidSizeThrows) {
  EXPECT_THROW(broadcast_overhead(0, nangate45_model()), util::Error);
}

}  // namespace
}  // namespace fuse::hw
