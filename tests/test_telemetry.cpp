// Telemetry layer: concurrent metric correctness (run under TSan by
// tools/check.sh), span nesting, JSON validity of both exporters, and a
// golden check that the sched.* counters reproduce the MappingPlan-derived
// values for a real MobileNet-V2 layer.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "nets/zoo.hpp"
#include "nn/kernels.hpp"
#include "nn/ops.hpp"
#include "sched/latency.hpp"
#include "systolic/config.hpp"
#include "systolic/mapping.hpp"
#include "systolic/trace.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"
#include "util/trace_sink.hpp"

namespace fuse {
namespace {

// --- minimal JSON validator/reader (tests only) ------------------------------
// Enough of RFC 8259 to parse everything the sinks emit: objects, arrays,
// strings with escapes, numbers, literals. parse() returns true iff the
// whole input is one valid JSON value.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  bool parse() {
    skip_ws();
    return value() && (skip_ws(), pos_ == text_.size());
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character: invalid JSON
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && text_[start] != '.' &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool valid_json(const std::string& text) {
  return JsonCursor(text).parse();
}

/// The numeric field `key` of the first event named `name`, or npos-like
/// UINT64_MAX when absent. Good enough for the sink's stable field order.
std::uint64_t event_field(const std::string& json, const std::string& name,
                          const std::string& key) {
  const std::string anchor = "\"name\":\"" + name + "\"";
  const std::size_t at = json.find(anchor);
  if (at == std::string::npos) return UINT64_MAX;
  // Fields of one event object: search forward from the name, stop at '}'.
  const std::size_t end = json.find('}', at);
  const std::string field = "\"" + key + "\":";
  const std::size_t f = json.find(field, at);
  if (f == std::string::npos || f > end) return UINT64_MAX;
  return std::strtoull(json.c_str() + f + field.size(), nullptr, 10);
}

TEST(Telemetry, CounterConcurrentAddsAreLossless) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  util::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAdds; ++i) {
        counter.add();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kAdds);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Telemetry, GaugeHighWaterMarkUnderContention) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  util::Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kRounds = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kRounds; ++i) {
        gauge.add(1);
        gauge.add(-1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_GE(gauge.max(), 1);
  EXPECT_LE(gauge.max(), kThreads);
}

TEST(Telemetry, HistogramBucketsArePowersOfTwo) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  using util::Histogram;
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(1023), 10);
  EXPECT_EQ(Histogram::bucket_index(1024), 11);
  // The top bucket is open-ended: huge values clamp instead of overflow.
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), Histogram::kBuckets - 1);
  for (int bucket = 1; bucket < Histogram::kBuckets - 1; ++bucket) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(bucket)),
              bucket)
        << "bucket " << bucket;
  }
}

TEST(Telemetry, HistogramConcurrentObserveConserves) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  util::Histogram hist;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.observe((i + static_cast<std::uint64_t>(t)) % 100);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (int b = 0; b < util::Histogram::kBuckets; ++b) {
    bucket_total += hist.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(Telemetry, RegistryReturnsStableReferences) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  util::MetricsRegistry registry;
  util::Counter& a = registry.counter("test.a");
  util::Counter& a2 = registry.counter("test.a");
  util::Counter& b = registry.counter("test.b");
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
  a.add(5);
  EXPECT_EQ(a2.value(), 5u);
  registry.reset();
  EXPECT_EQ(a.value(), 0u);
}

TEST(Telemetry, RegistryJsonParsesBack) {
  util::MetricsRegistry registry;
  registry.counter("test.counter").add(42);
  registry.gauge("test.gauge").add(7);
  registry.histogram("test.hist").observe(100);
  registry.histogram("test.hist").observe(0);
  std::ostringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(valid_json(json)) << json;
  if (util::telemetry_enabled()) {
    EXPECT_NE(json.find("\"test.counter\": 42"), std::string::npos) << json;
  }
}

TEST(Telemetry, SpanWithoutSinkIsInactive) {
  ASSERT_EQ(util::global_trace_sink(), nullptr);
  util::ScopedSpan span("test.orphan");
  EXPECT_FALSE(span.active());
  span.annotate("ignored", std::uint64_t{1});  // must be a safe no-op
}

TEST(Telemetry, NestedSpansStayContained) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  util::TraceSink sink;
  util::set_global_trace_sink(&sink);
  {
    util::ScopedSpan outer("test.outer");
    EXPECT_TRUE(outer.active());
    outer.annotate("label", std::string("out"));
    {
      util::ScopedSpan inner("test.inner");
      inner.annotate("depth", std::uint64_t{2});
    }
  }
  util::set_global_trace_sink(nullptr);
  EXPECT_EQ(sink.event_count(), 2u);
  std::ostringstream out;
  sink.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(valid_json(json)) << json;
  const std::uint64_t outer_ts = event_field(json, "test.outer", "ts");
  const std::uint64_t outer_dur = event_field(json, "test.outer", "dur");
  const std::uint64_t inner_ts = event_field(json, "test.inner", "ts");
  const std::uint64_t inner_dur = event_field(json, "test.inner", "dur");
  ASSERT_NE(outer_ts, UINT64_MAX);
  ASSERT_NE(inner_ts, UINT64_MAX);
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur);
}

TEST(Telemetry, FoldTraceJsonMatchesTraceTotals) {
  const auto cfg = systolic::square_array(8);
  const systolic::MemoryConfig mem;
  const systolic::FoldTrace trace =
      systolic::matmul_trace(20, 16, 20, cfg, mem);
  util::TraceSink sink;
  const std::uint64_t cursor =
      append_fold_trace_events(sink, trace, "op", /*cycle_offset=*/100);
  EXPECT_EQ(cursor, 100 + trace.total_cycles);
  // One span per fold, one SRAM sample per fold, one closing zero sample.
  EXPECT_EQ(sink.event_count(), 2 * trace.folds.size() + 1);
  std::ostringstream out;
  sink.write_json(out);
  EXPECT_TRUE(valid_json(out.str())) << out.str();
}

// The golden acceptance check: lowering one real MobileNet-V2 depthwise
// layer must move the sched.* counters by exactly the MappingPlan-derived
// amounts (MACs, folds, busy and total PE-cycles).
TEST(Telemetry, SchedCountersMatchMappingPlanGolden) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  const nets::NetworkModel model =
      nets::build_network(nets::NetworkId::kMobileNetV2);
  const nn::LayerDesc* depthwise = nullptr;
  for (const nn::LayerDesc& layer : model.layers) {
    if (layer.kind == nn::OpKind::kDepthwiseConv) {
      depthwise = &layer;
      break;
    }
  }
  ASSERT_NE(depthwise, nullptr) << "MobileNet-V2 has no depthwise layer?";

  const auto cfg = systolic::square_array(64);
  const systolic::LatencyEstimate plan_est =
      systolic::lower(*depthwise, cfg).total_latency();

  util::MetricsRegistry& reg = util::metrics();
  const std::uint64_t layers0 = reg.counter("sched.layers").value();
  const std::uint64_t macs0 = reg.counter("sched.macs").value();
  const std::uint64_t folds0 = reg.counter("sched.folds").value();
  const std::uint64_t busy0 = reg.counter("sched.pe_cycles_busy").value();
  const std::uint64_t total0 = reg.counter("sched.pe_cycles_total").value();

  const systolic::LatencyEstimate est = sched::layer_latency(*depthwise, cfg);
  EXPECT_EQ(est.cycles, plan_est.cycles);

  EXPECT_EQ(reg.counter("sched.layers").value() - layers0, 1u);
  EXPECT_EQ(reg.counter("sched.macs").value() - macs0, plan_est.mac_ops);
  EXPECT_EQ(reg.counter("sched.folds").value() - folds0, plan_est.folds);
  EXPECT_EQ(reg.counter("sched.pe_cycles_busy").value() - busy0,
            plan_est.mac_ops);
  EXPECT_EQ(reg.counter("sched.pe_cycles_total").value() - total0,
            plan_est.cycles * static_cast<std::uint64_t>(cfg.pe_count()));
}

// The fast kernels must leave an exact telemetry trail: the ISA dispatch
// counters pin to the FORCED ISA (never the other one), every dispatch
// observes the work grain, and packing accounts its bytes exactly. A
// 4x4 matmul packs one kNr=8 panel of k=4 floats: 4 * 8 * 4 = 128 bytes.
TEST(Telemetry, KernelCountersPinnedToForcedIsa) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  const nn::KernelBackend saved_backend = nn::kernel_backend();
  const nn::KernelIsa saved_isa = nn::kernel_isa();
  nn::set_kernel_backend(nn::KernelBackend::kFast);

  util::Rng rng(7);
  tensor::Tensor a(tensor::Shape{4, 4});
  tensor::Tensor b(tensor::Shape{4, 4});
  a.fill_uniform(rng, -1.0F, 1.0F);
  b.fill_uniform(rng, -1.0F, 1.0F);

  util::MetricsRegistry& reg = util::metrics();
  util::Counter& avx2_count = reg.counter("kernels.dispatch.avx2");
  util::Counter& scalar_count = reg.counter("kernels.dispatch.scalar");
  util::Counter& pack_bytes = reg.counter("kernels.pack_bytes");
  util::Histogram& grain = reg.histogram("kernels.grain");
  constexpr std::uint64_t kPanelBytes = 4 * 8 * sizeof(float);  // 128

  const auto run_leg = [&](nn::KernelIsa isa) {
    nn::set_kernel_isa(isa);
    const std::uint64_t avx2_0 = avx2_count.value();
    const std::uint64_t scalar_0 = scalar_count.value();
    const std::uint64_t pack_0 = pack_bytes.value();
    const std::uint64_t grain_0 = grain.count();
    (void)nn::matmul(a, b);
    const bool is_avx2 = isa == nn::KernelIsa::kAvx2;
    EXPECT_EQ(avx2_count.value() - avx2_0, is_avx2 ? 1u : 0u)
        << nn::kernel_isa_name(isa);
    EXPECT_EQ(scalar_count.value() - scalar_0, is_avx2 ? 0u : 1u)
        << nn::kernel_isa_name(isa);
    EXPECT_EQ(pack_bytes.value() - pack_0, kPanelBytes)
        << nn::kernel_isa_name(isa);
    EXPECT_EQ(grain.count() - grain_0, 1u) << nn::kernel_isa_name(isa);
  };

  run_leg(nn::KernelIsa::kScalar);
  if (nn::kernel_isa_available(nn::KernelIsa::kAvx2)) {
    run_leg(nn::KernelIsa::kAvx2);
  }

  nn::set_kernel_isa(saved_isa);
  nn::set_kernel_backend(saved_backend);
}

TEST(Telemetry, HistogramObserveAtPowerOfTwoBoundaries) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  using util::Histogram;
  Histogram h;
  // A value exactly at a bucket's lower bound lands in THAT bucket
  // (buckets are [2^(i-1), 2^i), half-open on the right).
  for (int exp = 0; exp < 20; ++exp) {
    h.observe(1ULL << exp);
  }
  for (int exp = 0; exp < 20; ++exp) {
    EXPECT_EQ(h.bucket_count(exp + 1), 1u) << "2^" << exp;
  }
  // One below the boundary stays in the previous bucket.
  Histogram below;
  below.observe((1ULL << 10) - 1);  // 1023
  EXPECT_EQ(below.bucket_count(10), 1u);
  EXPECT_EQ(below.bucket_count(11), 0u);
  below.observe(1ULL << 10);  // 1024 crosses
  EXPECT_EQ(below.bucket_count(11), 1u);
  EXPECT_EQ(below.count(), 2u);
  EXPECT_EQ(below.sum(), 1023u + 1024u);
}

TEST(Telemetry, PercentileZeroAndOneSample) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  using util::ProfileCollector;
  const std::vector<std::uint64_t> empty;
  EXPECT_EQ(ProfileCollector::percentile(empty, 0.50), 0.0);
  EXPECT_EQ(ProfileCollector::percentile(empty, 0.99), 0.0);
  const std::vector<std::uint64_t> one{42};
  EXPECT_EQ(ProfileCollector::percentile(one, 0.0), 42.0);
  EXPECT_EQ(ProfileCollector::percentile(one, 0.50), 42.0);
  EXPECT_EQ(ProfileCollector::percentile(one, 1.0), 42.0);
}

TEST(Telemetry, PercentileLinearInterpolation) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  using util::ProfileCollector;
  const std::vector<std::uint64_t> two{10, 20};
  EXPECT_DOUBLE_EQ(ProfileCollector::percentile(two, 0.50), 15.0);
  EXPECT_DOUBLE_EQ(ProfileCollector::percentile(two, 0.90), 19.0);
  EXPECT_DOUBLE_EQ(ProfileCollector::percentile(two, 1.0), 20.0);
  const std::vector<std::uint64_t> five{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(ProfileCollector::percentile(five, 0.50), 20.0);
  EXPECT_DOUBLE_EQ(ProfileCollector::percentile(five, 0.25), 10.0);
  // rank 0.9 * 4 = 3.6 -> 30 + 0.6 * 10
  EXPECT_DOUBLE_EQ(ProfileCollector::percentile(five, 0.90), 36.0);
}

TEST(Telemetry, ProfileCollectorSelfVsChildTime) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  util::ProfileCollector collector;
  util::set_global_profile_collector(&collector);
  {
    util::ScopedSpan outer("test.prof.outer");
    EXPECT_TRUE(outer.active());
    { util::ScopedSpan inner("test.prof.inner"); }
    { util::ScopedSpan inner("test.prof.inner"); }
  }
  util::set_global_profile_collector(nullptr);
  { util::ScopedSpan orphan("test.prof.after"); }  // not recorded

  const auto timers = collector.snapshot();
  ASSERT_EQ(timers.size(), 2u);
  EXPECT_EQ(timers[0].name, "test.prof.inner");
  EXPECT_EQ(timers[0].count, 2u);
  EXPECT_EQ(timers[1].name, "test.prof.outer");
  EXPECT_EQ(timers[1].count, 1u);
  // The parent's self time excludes the nested spans' wall time.
  EXPECT_LE(timers[1].self_us,
            timers[1].total_us);
  // Leaf spans have self == total.
  EXPECT_EQ(timers[0].self_us, timers[0].total_us);
  EXPECT_LE(timers[0].min_us, timers[0].max_us);
  EXPECT_GE(timers[0].p99_us, timers[0].p50_us);

  std::ostringstream out;
  collector.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"test.prof.outer\""), std::string::npos);
  EXPECT_EQ(json.find("\"test.prof.after\""), std::string::npos);
}

TEST(Telemetry, TraceSinkJsonStringEscaping) {
  if (!util::telemetry_enabled()) GTEST_SKIP() << "FUSE_TELEMETRY off";
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("quote\"backslash\\"),
            "quote\\\"backslash\\\\");
  EXPECT_EQ(util::json_escape("tab\tnewline\ncr\r"),
            "tab\\tnewline\\ncr\\r");
  EXPECT_EQ(util::json_escape(std::string("nul\0byte", 8)),
            "nul\\u0000byte");
  EXPECT_EQ(util::json_escape("\x01\x1f"), "\\u0001\\u001f");

  // End-to-end: a span annotation with every escape class survives the
  // sink as parseable JSON containing the escaped form.
  util::TraceSink sink;
  util::set_global_trace_sink(&sink);
  {
    util::ScopedSpan span("test.escape");
    span.annotate("payload", std::string("a\"b\\c\nd"));
  }
  util::set_global_trace_sink(nullptr);
  std::ostringstream out;
  sink.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(Strings, FormatBytesUsesBinaryUnits) {
  EXPECT_EQ(util::format_bytes(0), "0 B");
  EXPECT_EQ(util::format_bytes(512), "512 B");
  EXPECT_EQ(util::format_bytes(1023), "1023 B");
  EXPECT_EQ(util::format_bytes(1024), "1.0 KiB");
  EXPECT_EQ(util::format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(util::format_bytes(1024ull * 1024), "1.0 MiB");
  EXPECT_EQ(util::format_bytes(3ull * 1024 * 1024 * 1024 / 2), "1.5 GiB");
}

TEST(Strings, FormatCountIsExactBelowTenThousand) {
  EXPECT_EQ(util::format_count(0), "0");
  EXPECT_EQ(util::format_count(9999), "9999");
  EXPECT_EQ(util::format_count(10000), "10.0k");
  EXPECT_EQ(util::format_count(12345), "12.3k");
  EXPECT_EQ(util::format_count(4600000), "4.6M");
  EXPECT_EQ(util::format_count(7800000000ull), "7.8B");
}

}  // namespace
}  // namespace fuse
