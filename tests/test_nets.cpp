// Tests for the network zoo: geometry chaining, MAC/param counts against
// the published figures, slot counts, and drop-in shape preservation under
// the FuSe transform.
#include <gtest/gtest.h>

#include "nets/builder.hpp"
#include "nets/serialize.hpp"
#include "nets/zoo.hpp"
#include "util/check.hpp"

namespace fuse::nets {
namespace {

using core::FuseMode;
using nn::LayerDesc;
using nn::OpKind;

double macs_millions(const NetworkModel& model) {
  return static_cast<double>(model.total_macs()) / 1e6;
}

double params_millions(const NetworkModel& model) {
  return static_cast<double>(model.total_params()) / 1e6;
}

/// Every layer's input geometry must chain from some prior activation; for
/// this IR we verify the simpler invariant that consecutive *main-path*
/// layers chain exactly (side/skip layers are tagged by construction).
void check_geometry_sane(const NetworkModel& model) {
  for (const LayerDesc& layer : model.layers) {
    EXPECT_GT(layer.in_c, 0) << layer.name;
    EXPECT_GT(layer.out_c, 0) << layer.name;
    EXPECT_GT(layer.out_h, 0) << layer.name;
    EXPECT_GT(layer.out_w, 0) << layer.name;
    EXPECT_LE(layer.out_h, layer.in_h) << layer.name;  // nets only shrink
  }
}

// --- make_divisible ---------------------------------------------------------

TEST(MakeDivisible, MobileNetV3Rule) {
  EXPECT_EQ(make_divisible(8), 8);
  EXPECT_EQ(make_divisible(12), 16);  // rounds to nearest multiple, up on tie
  EXPECT_EQ(make_divisible(11), 16);  // 8 would be below 90% of 11 -> bump
  EXPECT_EQ(make_divisible(100), 104);
  EXPECT_EQ(make_divisible(3), 8);    // never below divisor
}

// --- per-network counts -----------------------------------------------------

TEST(MobileNetV1, CountsNearPublished) {
  const NetworkModel m = mobilenet_v1({});
  EXPECT_EQ(m.num_slots, 13);
  EXPECT_NEAR(macs_millions(m), 569, 30);    // published ~569M (paper: 589)
  EXPECT_NEAR(params_millions(m), 4.23, 0.15);
  check_geometry_sane(m);
}

TEST(MobileNetV1, FinalActivationIs7x7x1024) {
  const NetworkModel m = mobilenet_v1({});
  // The layer before the global pool.
  const LayerDesc* last_conv = nullptr;
  for (const LayerDesc& l : m.layers) {
    if (l.kind == OpKind::kPointwiseConv) {
      last_conv = &l;
    }
  }
  ASSERT_NE(last_conv, nullptr);
  EXPECT_EQ(last_conv->out_c, 1024);
  EXPECT_EQ(last_conv->out_h, 7);
}

TEST(MobileNetV2, CountsNearPublished) {
  const NetworkModel m = mobilenet_v2({});
  EXPECT_EQ(m.num_slots, 17);
  EXPECT_NEAR(macs_millions(m), 300, 20);    // published ~300M (paper: 315)
  EXPECT_NEAR(params_millions(m), 3.50, 0.15);
  check_geometry_sane(m);
}

TEST(MobileNetV3Large, CountsNearPublished) {
  const NetworkModel m = mobilenet_v3_large({});
  EXPECT_EQ(m.num_slots, 15);
  EXPECT_NEAR(macs_millions(m), 219, 25);    // published ~219M (paper: 238)
  EXPECT_NEAR(params_millions(m), 5.47, 0.3);
  check_geometry_sane(m);
}

TEST(MobileNetV3Small, CountsNearPublished) {
  const NetworkModel m = mobilenet_v3_small({});
  EXPECT_EQ(m.num_slots, 11);
  EXPECT_NEAR(macs_millions(m), 57, 12);     // published ~57M (paper: 66)
  EXPECT_NEAR(params_millions(m), 2.54, 0.45);
  check_geometry_sane(m);
}

TEST(MnasNetB1, CountsNearPublished) {
  const NetworkModel m = mnasnet_b1({});
  EXPECT_EQ(m.num_slots, 17);
  EXPECT_NEAR(macs_millions(m), 315, 20);    // published ~315M (paper: 325)
  EXPECT_NEAR(params_millions(m), 4.38, 0.2);
  check_geometry_sane(m);
}

TEST(ResNet50, CountsNearPublished) {
  const NetworkModel m = resnet50();
  EXPECT_NEAR(macs_millions(m), 4100, 150);  // ~4.1 GMACs
  EXPECT_NEAR(params_millions(m), 25.6, 1.0);
  EXPECT_EQ(m.num_slots, 0);
  check_geometry_sane(m);
}

TEST(ResNet50, HasTwelveTimesMoreMacsThanV2) {
  // The intro's motivating numbers.
  const double ratio = macs_millions(resnet50()) /
                       macs_millions(mobilenet_v2({}));
  EXPECT_GT(ratio, 11.0);
  EXPECT_LT(ratio, 15.0);
}

// --- zoo dispatch ------------------------------------------------------------

TEST(Zoo, PaperNetworksAreTheFive) {
  EXPECT_EQ(paper_networks().size(), 5u);
}

TEST(Zoo, NamesMatchTable) {
  EXPECT_EQ(network_name(NetworkId::kMobileNetV1), "MobileNet-V1");
  EXPECT_EQ(network_name(NetworkId::kMnasNetB1), "MnasNet-B1");
}

TEST(Zoo, BuildDispatchesToRightNetwork) {
  EXPECT_EQ(build_network(NetworkId::kMobileNetV3Small).name,
            "MobileNet-V3-Small");
}

TEST(Zoo, ResNetRejectsFuseModes) {
  EXPECT_THROW(build_network(NetworkId::kResNet50, {FuseMode::kFull}),
               util::Error);
}

TEST(Zoo, PaperTable1HasFiveRowsPerNetwork) {
  for (NetworkId id : paper_networks()) {
    EXPECT_EQ(paper_table1(id).size(), 5u);
  }
  EXPECT_TRUE(paper_table1(NetworkId::kResNet50).empty());
}

// --- fuse transform through the builder --------------------------------------

class ZooTransform : public ::testing::TestWithParam<NetworkId> {};

TEST_P(ZooTransform, WrongModeCountThrows) {
  EXPECT_THROW(build_network(GetParam(), {FuseMode::kFull}), util::Error);
}

TEST_P(ZooTransform, FullVariantRemovesAllDepthwiseLayers) {
  const NetworkId id = GetParam();
  const int slots = num_fuse_slots(id);
  const NetworkModel fused =
      build_network(id, core::uniform_modes(slots, FuseMode::kFull));
  int dw = 0, fuse_rows = 0, fuse_cols = 0;
  for (const LayerDesc& l : fused.layers) {
    if (l.kind == OpKind::kDepthwiseConv) {
      ++dw;
    }
    if (l.kind == OpKind::kFuseRowConv) {
      ++fuse_rows;
    }
    if (l.kind == OpKind::kFuseColConv) {
      ++fuse_cols;
    }
  }
  EXPECT_EQ(dw, 0);
  EXPECT_EQ(fuse_rows, slots);
  EXPECT_EQ(fuse_cols, slots);
}

TEST_P(ZooTransform, TransformPreservesNetworkInterface) {
  // Drop-in property at network level: the classifier geometry is
  // untouched by any variant.
  const NetworkId id = GetParam();
  const int slots = num_fuse_slots(id);
  const NetworkModel base = build_network(id);
  for (FuseMode mode : {FuseMode::kFull, FuseMode::kHalf}) {
    const NetworkModel fused =
        build_network(id, core::uniform_modes(slots, mode));
    const LayerDesc& base_fc = base.layers.back();
    const LayerDesc& fused_fc = fused.layers.back();
    EXPECT_EQ(base_fc.kind, OpKind::kFullyConnected);
    EXPECT_EQ(fused_fc.in_c, base_fc.in_c);
    EXPECT_EQ(fused_fc.out_c, base_fc.out_c);
    check_geometry_sane(fused);
  }
}

TEST_P(ZooTransform, HalfVariantReducesMacs) {
  // Table I: Half variants have slightly FEWER MACs than baseline (K -> 1
  // taps per output beats the K^2 kernel).
  const NetworkId id = GetParam();
  const int slots = num_fuse_slots(id);
  const NetworkModel base = build_network(id);
  const NetworkModel half =
      build_network(id, core::uniform_modes(slots, FuseMode::kHalf));
  EXPECT_LT(half.total_macs(), base.total_macs());
  EXPECT_GT(half.total_macs(), base.total_macs() * 8 / 10);
}

TEST_P(ZooTransform, FullVariantIncreasesMacs) {
  // Table I: Full variants add MACs (1.2x-2x depending on network).
  const NetworkId id = GetParam();
  const int slots = num_fuse_slots(id);
  const NetworkModel base = build_network(id);
  const NetworkModel full =
      build_network(id, core::uniform_modes(slots, FuseMode::kFull));
  EXPECT_GT(full.total_macs(), base.total_macs());
  EXPECT_LT(full.total_macs(), base.total_macs() * 2);
}

TEST_P(ZooTransform, MixedModesCompose) {
  const NetworkId id = GetParam();
  const int slots = num_fuse_slots(id);
  std::vector<FuseMode> modes(static_cast<std::size_t>(slots),
                              FuseMode::kBaseline);
  modes[0] = FuseMode::kFull;
  if (slots > 1) {
    modes[static_cast<std::size_t>(slots) - 1] = FuseMode::kHalf;
  }
  const NetworkModel mixed = build_network(id, modes);
  check_geometry_sane(mixed);
  int fuse_layers = 0;
  for (const LayerDesc& l : mixed.layers) {
    if (l.kind == OpKind::kFuseRowConv || l.kind == OpKind::kFuseColConv) {
      ++fuse_layers;
    }
  }
  EXPECT_EQ(fuse_layers, slots > 1 ? 4 : 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworks, ZooTransform,
    ::testing::Values(NetworkId::kMobileNetV1, NetworkId::kMobileNetV2,
                      NetworkId::kMobileNetV3Small,
                      NetworkId::kMobileNetV3Large, NetworkId::kMnasNetB1),
    [](const ::testing::TestParamInfo<NetworkId>& info) {
      std::string name = network_name(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// --- builder-level checks ----------------------------------------------------

TEST(Builder, SlotTagsCoverDepthwiseAndProjection) {
  const NetworkModel m = mobilenet_v2({});
  // Every depthwise layer and its projection pointwise must share a slot.
  int tagged_dw = 0, tagged_pw = 0;
  for (const LayerDesc& l : m.layers) {
    if (l.kind == OpKind::kDepthwiseConv && l.fuse_slot >= 0) {
      ++tagged_dw;
    }
    if (l.kind == OpKind::kPointwiseConv && l.fuse_slot >= 0) {
      ++tagged_pw;
    }
  }
  EXPECT_EQ(tagged_dw, 17);
  EXPECT_EQ(tagged_pw, 17);  // exactly the projection pointwise layers
}

TEST(Builder, SqueezeExciteTaggedInsideSlot) {
  const NetworkModel m = mobilenet_v3_small({});
  bool found_se_fc_with_slot = false;
  for (const LayerDesc& l : m.layers) {
    if (l.in_squeeze_excite && l.kind == OpKind::kFullyConnected) {
      EXPECT_GE(l.fuse_slot, 0) << l.name;
      found_se_fc_with_slot = true;
    }
  }
  EXPECT_TRUE(found_se_fc_with_slot);
}

TEST(Builder, FuseFullWidensSqueezeExcite) {
  // Drop-in behaviour: the SE block after a Full replacement sees 2x
  // channels.
  const NetworkModel base = mobilenet_v3_small({});
  const NetworkModel full = mobilenet_v3_small(
      core::uniform_modes(11, FuseMode::kFull));
  const auto find_first_se_reduce = [](const NetworkModel& m) -> LayerDesc {
    for (const LayerDesc& l : m.layers) {
      if (l.in_squeeze_excite && l.kind == OpKind::kFullyConnected) {
        return l;
      }
    }
    return {};
  };
  const LayerDesc base_se = find_first_se_reduce(base);
  const LayerDesc full_se = find_first_se_reduce(full);
  EXPECT_EQ(full_se.in_c, 2 * base_se.in_c);
}

TEST(Builder, ResidualAddsPresentInV2) {
  const NetworkModel m = mobilenet_v2({});
  int adds = 0;
  for (const LayerDesc& l : m.layers) {
    if (l.kind == OpKind::kElementwiseAdd) {
      ++adds;
    }
  }
  // V2 repeats with stride 1 and matching channels: (2-1)+(3-1)+(4-1)+
  // (3-1)+(3-1) = 10.
  EXPECT_EQ(adds, 10);
}


TEST(WidthMultiplier, ScalesChannelsAndCounts) {
  const NetworkModel full = mobilenet_v1({}, 1.0);
  const NetworkModel half = mobilenet_v1({}, 0.5);
  EXPECT_EQ(half.num_slots, full.num_slots);
  EXPECT_LT(half.total_macs(), full.total_macs() / 3);
  EXPECT_LT(half.total_params(), full.total_params() / 2);
  // Published alpha=0.5 V1: ~149M MACs, ~1.3M params.
  EXPECT_NEAR(static_cast<double>(half.total_macs()) / 1e6, 149, 15);
  check_geometry_sane(half);
}

TEST(WidthMultiplier, V2HeadDoesNotShrinkBelow1280) {
  const NetworkModel quarter = mobilenet_v2({}, 0.25);
  const nn::LayerDesc* head = nullptr;
  for (const nn::LayerDesc& l : quarter.layers) {
    if (l.kind == OpKind::kPointwiseConv) {
      head = &l;  // last pointwise is the head conv
    }
  }
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->out_c, 1280);
  check_geometry_sane(quarter);
}

TEST(WidthMultiplier, FuseModesComposeWithScaling) {
  const int slots = num_fuse_slots(NetworkId::kMobileNetV2);
  const NetworkModel scaled = build_network_scaled(
      NetworkId::kMobileNetV2, 0.5,
      core::uniform_modes(slots, FuseMode::kFull));
  int fuse_layers = 0;
  for (const nn::LayerDesc& l : scaled.layers) {
    if (l.kind == OpKind::kFuseRowConv || l.kind == OpKind::kFuseColConv) {
      ++fuse_layers;
    }
  }
  EXPECT_EQ(fuse_layers, 2 * slots);
  check_geometry_sane(scaled);
}

TEST(WidthMultiplier, RejectedForNetworksWithoutMultipliers) {
  EXPECT_THROW(build_network_scaled(NetworkId::kMnasNetB1, 0.5),
               util::Error);
  EXPECT_NO_THROW(build_network_scaled(NetworkId::kMnasNetB1, 1.0));
}

TEST(WidthMultiplier, OutOfRangeThrows) {
  EXPECT_THROW(mobilenet_v1({}, 0.0), util::Error);
  EXPECT_THROW(mobilenet_v2({}, 5.0), util::Error);
}


// --- serialization -------------------------------------------------------------

TEST(Serialize, RoundTripsEveryZooNetwork) {
  for (NetworkId id :
       {NetworkId::kMobileNetV1, NetworkId::kMobileNetV2,
        NetworkId::kMobileNetV3Small, NetworkId::kMobileNetV3Large,
        NetworkId::kMnasNetB1, NetworkId::kResNet50}) {
    const NetworkModel original = build_network(id);
    const NetworkModel parsed = from_text(to_text(original));
    EXPECT_EQ(parsed.name, original.name);
    EXPECT_EQ(parsed.num_slots, original.num_slots);
    ASSERT_EQ(parsed.layers.size(), original.layers.size());
    EXPECT_EQ(parsed.total_macs(), original.total_macs());
    EXPECT_EQ(parsed.total_params(), original.total_params());
    for (std::size_t i = 0; i < parsed.layers.size(); ++i) {
      const LayerDesc& a = parsed.layers[i];
      const LayerDesc& b = original.layers[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.in_c, b.in_c);
      EXPECT_EQ(a.out_h, b.out_h);
      EXPECT_EQ(a.groups, b.groups);
      EXPECT_EQ(a.activation, b.activation);
      EXPECT_EQ(a.fuse_slot, b.fuse_slot);
      EXPECT_EQ(a.in_squeeze_excite, b.in_squeeze_excite);
    }
  }
}

TEST(Serialize, RoundTripsFuseVariants) {
  const NetworkModel original = build_network(
      NetworkId::kMobileNetV2,
      core::uniform_modes(17, FuseMode::kFull));
  const NetworkModel parsed = from_text(to_text(original));
  EXPECT_EQ(parsed.total_macs(), original.total_macs());
  int fuse_layers = 0;
  for (const LayerDesc& l : parsed.layers) {
    if (l.kind == OpKind::kFuseRowConv || l.kind == OpKind::kFuseColConv) {
      ++fuse_layers;
    }
  }
  EXPECT_EQ(fuse_layers, 34);
}

TEST(Serialize, FileRoundTrip) {
  const NetworkModel original = build_network(NetworkId::kMobileNetV3Small);
  const std::string path = testing::TempDir() + "/fuse_net.txt";
  save_network(original, path);
  const NetworkModel loaded = load_network(path);
  EXPECT_EQ(loaded.total_params(), original.total_params());
  std::remove(path.c_str());
}

TEST(Serialize, MalformedInputThrows) {
  EXPECT_THROW(from_text(""), util::Error);
  EXPECT_THROW(from_text("not-a-network"), util::Error);
  EXPECT_THROW(from_text("fusenet v2 name x slots 0 layers 0\n"),
               util::Error);
  // Truncated layer record.
  const NetworkModel m = build_network(NetworkId::kMobileNetV3Small);
  std::string text = to_text(m);
  text.resize(text.size() / 2);
  EXPECT_THROW(from_text(text), util::Error);
}

TEST(Serialize, UnknownKindThrows) {
  std::string text =
      "fusenet v1 name n slots 0 layers 1\n"
      "layer l kind warp in 1 1 1 out 1 1 1 k 1 1 s 1 1 p 0 0 g 1 "
      "bias 0 bn 0 act none se 0 slot -1\n";
  EXPECT_THROW(from_text(text), util::Error);
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW(load_network("/nonexistent/fuse_net.txt"), util::Error);
}


TEST(Resolution, ScalesSpatialDimsOnly) {
  const NetworkModel r224 = mobilenet_v2({}, 1.0, 224);
  const NetworkModel r128 = mobilenet_v2({}, 1.0, 128);
  EXPECT_EQ(r128.num_slots, r224.num_slots);
  EXPECT_EQ(r128.total_params(), r224.total_params());  // weights unchanged
  EXPECT_LT(r128.total_macs(), r224.total_macs() / 2);  // ~(128/224)^2
  EXPECT_GT(r128.total_macs(), r224.total_macs() / 5);
  check_geometry_sane(r128);
}

TEST(Resolution, InvalidSizesThrow) {
  EXPECT_THROW(mobilenet_v1({}, 1.0, 100), util::Error);  // not /32
  EXPECT_THROW(mobilenet_v2({}, 1.0, 0), util::Error);
  EXPECT_THROW(build_network_scaled(NetworkId::kMnasNetB1, 1.0, {}, 128),
               util::Error);
}


TEST(PaperCrossCheck, FuseMacDeltasTrackTableOne) {
  // The paper's Table I MAC columns imply per-network Full/baseline and
  // Half/baseline ratios; our transform arithmetic must land within a few
  // percent of them (it is the same formula, (2/D)*C*(K + C') vs
  // C*(K^2 + C'), evaluated over the same layer geometry).
  for (NetworkId id : paper_networks()) {
    const auto paper = paper_table1(id);
    const double paper_base = paper[0].macs_millions;
    const double paper_full = paper[1].macs_millions;
    const double paper_half = paper[2].macs_millions;
    const int slots = num_fuse_slots(id);
    const double base =
        static_cast<double>(build_network(id).total_macs());
    const double full = static_cast<double>(
        build_network(id, core::uniform_modes(slots, FuseMode::kFull))
            .total_macs());
    const double half = static_cast<double>(
        build_network(id, core::uniform_modes(slots, FuseMode::kHalf))
            .total_macs());
    EXPECT_NEAR(full / base, paper_full / paper_base, 0.08)
        << network_name(id);
    EXPECT_NEAR(half / base, paper_half / paper_base, 0.05)
        << network_name(id);
  }
}

TEST(PaperCrossCheck, FuseParamDeltasTrackTableOne) {
  for (NetworkId id : paper_networks()) {
    const auto paper = paper_table1(id);
    const double paper_ratio =
        paper[1].params_millions / paper[0].params_millions;  // Full/base
    const int slots = num_fuse_slots(id);
    const double base =
        static_cast<double>(build_network(id).total_params());
    const double full = static_cast<double>(
        build_network(id, core::uniform_modes(slots, FuseMode::kFull))
            .total_params());
    EXPECT_NEAR(full / base, paper_ratio, 0.12) << network_name(id);
  }
}

}  // namespace
}  // namespace fuse::nets
