// Randomized cross-checking properties (deterministic seeds): many random
// geometries pushed through pairs of independent implementations that must
// agree. These catch the class of bugs single hand-picked shapes miss —
// edge folds, ragged tiles, stride/pad interactions.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/fuseconv.hpp"
#include "nets/serialize.hpp"
#include "nn/ops.hpp"
#include "sched/execute.hpp"
#include "sched/latency.hpp"
#include "sched/latency_cache.hpp"
#include "systolic/cycle_model.hpp"
#include "systolic/sim.hpp"
#include "tensor/half.hpp"
#include "util/rng.hpp"

namespace fuse {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

Tensor random_tensor(Shape shape, util::Rng& rng) {
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

TEST(Property, ConvEqualsIm2colLoweringOnRandomGeometries) {
  util::Rng rng(1001);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t in_c = 1 + static_cast<std::int64_t>(rng.uniform_index(4));
    const std::int64_t out_c = 1 + static_cast<std::int64_t>(rng.uniform_index(5));
    const std::int64_t k = 1 + 2 * static_cast<std::int64_t>(rng.uniform_index(3));
    const std::int64_t stride = 1 + static_cast<std::int64_t>(rng.uniform_index(3));
    const std::int64_t pad = static_cast<std::int64_t>(rng.uniform_index(3));
    const std::int64_t hw = k + static_cast<std::int64_t>(rng.uniform_index(8));

    const Tensor input = random_tensor(Shape{1, in_c, hw, hw}, rng);
    const Tensor weight = random_tensor(Shape{out_c, in_c, k, k}, rng);
    nn::Conv2dParams p;
    p.stride_h = stride;
    p.stride_w = stride;
    p.pad_h = pad;
    p.pad_w = pad;
    const Tensor direct = nn::conv2d(input, weight, nullptr, p);
    const Tensor lowered = nn::conv2d_im2col(input, weight, nullptr, p);
    EXPECT_TRUE(allclose(lowered, direct, 1e-3F, 1e-4F))
        << "trial " << trial << ": c=" << in_c << "->" << out_c
        << " k=" << k << " s=" << stride << " p=" << pad << " hw=" << hw;
  }
}

TEST(Property, SimMatchesAnalyticOnRandomShapesAllDataflows) {
  util::Rng rng(1002);
  for (int trial = 0; trial < 15; ++trial) {
    const std::int64_t m = 1 + static_cast<std::int64_t>(rng.uniform_index(20));
    const std::int64_t t = 1 + static_cast<std::int64_t>(rng.uniform_index(15));
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.uniform_index(20));
    const std::int64_t size = 2 + static_cast<std::int64_t>(rng.uniform_index(7));
    const Tensor a = random_tensor(Shape{m, t}, rng);
    const Tensor b = random_tensor(Shape{t, n}, rng);
    const Tensor expected = nn::matmul(a, b);
    for (systolic::Dataflow df :
         {systolic::Dataflow::kOutputStationary,
          systolic::Dataflow::kWeightStationary,
          systolic::Dataflow::kInputStationary}) {
      systolic::ArrayConfig cfg = systolic::square_array(size);
      cfg.dataflow = df;
      cfg.overlap_fold_drain = false;
      systolic::SystolicArraySim sim(cfg);
      const systolic::SimResult result = sim.matmul(a, b);
      EXPECT_TRUE(allclose(result.output, expected, 1e-3F, 1e-4F))
          << "trial " << trial << " df=" << systolic::dataflow_name(df)
          << " m=" << m << " t=" << t << " n=" << n << " S=" << size;
      EXPECT_EQ(result.cycles,
                systolic::matmul_latency(m, t, n, cfg).cycles)
          << "trial " << trial << " df=" << systolic::dataflow_name(df);
    }
  }
}

TEST(Property, FuseStageEqualsGroupedConvPairOnRandomSpecs) {
  util::Rng rng(1003);
  for (int trial = 0; trial < 12; ++trial) {
    core::FuseConvSpec spec;
    spec.kernel = 1 + 2 * (1 + static_cast<std::int64_t>(rng.uniform_index(2)));
    spec.pad = spec.kernel / 2;
    spec.stride = 1 + static_cast<std::int64_t>(rng.uniform_index(2));
    spec.channels = 2 * (1 + static_cast<std::int64_t>(rng.uniform_index(4)));
    spec.in_h = spec.kernel + static_cast<std::int64_t>(rng.uniform_index(6));
    spec.in_w = spec.kernel + static_cast<std::int64_t>(rng.uniform_index(6));
    spec.variant = rng.uniform_index(2) == 0 ? core::FuseVariant::kFull
                                             : core::FuseVariant::kHalf;
    util::Rng weights_rng(2000 + static_cast<std::uint64_t>(trial));
    const core::FuseConvStage stage(spec, weights_rng);
    const Tensor input =
        random_tensor(Shape{1, spec.channels, spec.in_h, spec.in_w}, rng);
    const Tensor out = stage.forward(input);

    // Contract: output geometry matches the spec.
    EXPECT_EQ(out.shape(),
              (Shape{1, spec.out_channels(), spec.out_h(), spec.out_w()}))
        << "trial " << trial;

    // Row branch equals the grouped conv run independently.
    const std::int64_t branch_c = spec.branch_channels();
    const Tensor row_in =
        spec.variant == core::FuseVariant::kFull
            ? input
            : core::slice_channels(input, 0, branch_c);
    nn::Conv2dParams p;
    p.stride_h = spec.stride;
    p.stride_w = spec.stride;
    p.pad_w = spec.pad;
    p.groups = branch_c;
    const Tensor row_expected =
        nn::conv2d(row_in, stage.row_weights(), nullptr, p);
    for (std::int64_t i = 0; i < row_expected.num_elements(); ++i) {
      EXPECT_FLOAT_EQ(out[i], row_expected[i]) << "trial " << trial;
    }
  }
}

TEST(Property, LayerLatencyMacsAlwaysMatchLayerMacs) {
  // The analytic model must account exactly the layer's MAC count for
  // every latency-bearing kind, on random geometries and array sizes.
  util::Rng rng(1004);
  for (int trial = 0; trial < 25; ++trial) {
    const std::int64_t size = 4 + static_cast<std::int64_t>(rng.uniform_index(61));
    systolic::ArrayConfig cfg = systolic::square_array(size);
    cfg.strided_fuse_dense_compute = false;  // else dense > layer.macs()
    const std::int64_t c = 1 + static_cast<std::int64_t>(rng.uniform_index(32));
    const std::int64_t hw = 5 + static_cast<std::int64_t>(rng.uniform_index(28));
    const std::int64_t k = 1 + 2 * static_cast<std::int64_t>(rng.uniform_index(3));
    const std::int64_t stride = 1 + static_cast<std::int64_t>(rng.uniform_index(2));
    if (hw < k) {
      continue;
    }
    const std::vector<nn::LayerDesc> layers = {
        nn::make_conv("c", c, hw, hw, c + 3, k, stride, k / 2),
        nn::make_depthwise("dw", c, hw, hw, k, stride, k / 2),
        nn::make_pointwise("pw", c, hw, hw, 2 * c),
        nn::make_fuse_row("fr", c, hw, hw, k, stride, k / 2),
        nn::make_fuse_col("fc", c, hw, hw, k, stride, k / 2),
        nn::make_fully_connected("fcl", c * 7, c + 11),
    };
    for (const nn::LayerDesc& layer : layers) {
      EXPECT_EQ(sched::layer_latency(layer, cfg).mac_ops, layer.macs())
          << "trial " << trial << " layer " << layer.to_string()
          << " size " << size;
    }
  }
}

TEST(Property, CachedLatencyEqualsUncachedEqualsSimulatedCycles) {
  // Three independent implementations of "how long does this layer take"
  // must agree on random geometries: the memoized LatencyCache lookup, the
  // direct analytic model, and the PE-grid simulator actually executing
  // the layer (overlap_fold_drain=false — what the simulator measures).
  util::Rng rng(1008);
  sched::LatencyCache cache;
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t size = 4 + static_cast<std::int64_t>(rng.uniform_index(5));
    systolic::ArrayConfig cfg = systolic::square_array(size);
    cfg.overlap_fold_drain = false;
    const std::int64_t c = 1 + static_cast<std::int64_t>(rng.uniform_index(6));
    const std::int64_t k = 1 + 2 * static_cast<std::int64_t>(rng.uniform_index(3));
    const std::int64_t hw = k + 2 + static_cast<std::int64_t>(rng.uniform_index(6));
    const std::int64_t stride = 1 + static_cast<std::int64_t>(rng.uniform_index(2));
    const std::int64_t pad = k / 2;
    const std::int64_t out_c = c + 1 + static_cast<std::int64_t>(rng.uniform_index(4));

    struct Case {
      nn::LayerDesc layer;
      tensor::Shape weight_shape;
    };
    const std::vector<Case> cases = {
        {nn::make_conv("c", c, hw, hw, out_c, k, stride, pad),
         Shape{out_c, c, k, k}},
        {nn::make_depthwise("dw", c, hw, hw, k, stride, pad),
         Shape{c, 1, k, k}},
        {nn::make_pointwise("pw", c, hw, hw, out_c), Shape{out_c, c, 1, 1}},
        {nn::make_fuse_row("fr", c, hw, hw, k, stride, pad),
         Shape{c, 1, 1, k}},
        {nn::make_fuse_col("fc", c, hw, hw, k, stride, pad),
         Shape{c, 1, k, 1}},
        {nn::make_fully_connected("fcl", c * 3, out_c, /*bias=*/false),
         Shape{out_c, c * 3}},
    };
    for (const Case& cs : cases) {
      const auto uncached = sched::layer_latency(cs.layer, cfg);
      // First lookup computes, second must hit; both equal the direct call.
      for (int pass = 0; pass < 2; ++pass) {
        const auto cached = cache.get_or_compute(cs.layer, cfg);
        EXPECT_EQ(cached.cycles, uncached.cycles)
            << "trial " << trial << " pass " << pass << " "
            << cs.layer.to_string();
        EXPECT_EQ(cached.folds, uncached.folds) << cs.layer.to_string();
        EXPECT_EQ(cached.mac_ops, uncached.mac_ops) << cs.layer.to_string();
      }
      const Tensor input =
          cs.layer.kind == nn::OpKind::kFullyConnected
              ? random_tensor(Shape{1, cs.layer.in_c, 1, 1}, rng)
              : random_tensor(Shape{1, c, hw, hw}, rng);
      const Tensor weight = random_tensor(cs.weight_shape, rng);
      const auto exec =
          sched::execute_layer_on_array(cs.layer, input, weight, cfg);
      EXPECT_EQ(exec.cycles, uncached.cycles)
          << "trial " << trial << " " << cs.layer.to_string() << " S="
          << size;
    }
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(cache.entries(), cache.misses());
}

TEST(Property, RandomModeVectorsKeepNetworksWellFormed) {
  util::Rng rng(1005);
  for (nets::NetworkId id : nets::paper_networks()) {
    const int slots = nets::num_fuse_slots(id);
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<core::FuseMode> modes(static_cast<std::size_t>(slots));
      for (auto& mode : modes) {
        const auto r = rng.uniform_index(3);
        mode = r == 0 ? core::FuseMode::kBaseline
               : r == 1 ? core::FuseMode::kFull
                        : core::FuseMode::kHalf;
      }
      const nets::NetworkModel model = nets::build_network(id, modes);
      EXPECT_GT(model.total_macs(), 0u);
      // The classifier interface is invariant.
      EXPECT_EQ(model.layers.back().out_c, 1000);
      // Serialization round-trips the random variant exactly.
      const nets::NetworkModel parsed =
          nets::from_text(nets::to_text(model));
      EXPECT_EQ(parsed.total_macs(), model.total_macs());
      EXPECT_EQ(parsed.total_params(), model.total_params());
      // Latency is finite and positive on a small array.
      EXPECT_GT(sched::network_latency(model, systolic::square_array(16))
                    .total_cycles,
                0u);
    }
  }
}

TEST(Property, HalfQuantizationIsMonotone) {
  util::Rng rng(1006);
  // Values beyond +-65504 saturate to +-inf, which is still monotone.
  float prev_x = -std::numeric_limits<float>::infinity();
  float prev_q = -std::numeric_limits<float>::infinity();
  std::vector<float> xs;
  for (int i = 0; i < 3000; ++i) {
    xs.push_back(static_cast<float>(rng.uniform(-70000.0, 70000.0)));
  }
  std::sort(xs.begin(), xs.end());
  for (float x : xs) {
    const float q = tensor::quantize_half(x);
    EXPECT_GE(q, prev_q) << "x=" << x << " after " << prev_x;
    prev_q = q;
    prev_x = x;
  }
}

TEST(Property, BatchedLatencyNeverBeatsPerfectScaling) {
  // Processing B images can never take less than ~B/(overhead) of one
  // image minus the shared pipeline overheads: check cycles(B) >=
  // cycles(1) (sanity) and cycles(B) <= B * cycles(1) (batching never
  // hurts throughput) for random conv layers.
  util::Rng rng(1007);
  const auto cfg = systolic::square_array(32);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t c = 1 + static_cast<std::int64_t>(rng.uniform_index(24));
    const std::int64_t hw = 7 + static_cast<std::int64_t>(rng.uniform_index(20));
    const nn::LayerDesc layer =
        nn::make_pointwise("pw", c, hw, hw, c + 5);
    const std::uint64_t one = sched::layer_latency_batched(layer, cfg, 1).cycles;
    const std::uint64_t four =
        sched::layer_latency_batched(layer, cfg, 4).cycles;
    EXPECT_GE(four, one) << "trial " << trial;
    EXPECT_LE(four, 4 * one) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fuse
