// Tests for the bottleneck-attribution engine (sched/attribution.hpp):
// the per-fold splits must sum exactly to the cycle-model latencies for
// every primitive kind x dataflow x overlap setting, and the network-level
// report must close all three identities (time, PE-cycles, roofline bound)
// for every paper network x variant x sched mode. attribute_network itself
// FUSE_CHECKs the identities, so most assertions here double as "the
// checks did not fire"; the EXPECTs restate them for gtest reporting.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sched/attribution.hpp"
#include "sched/latency.hpp"
#include "sched/netplan.hpp"
#include "sched/report.hpp"
#include "systolic/mapping.hpp"

namespace fuse::sched {
namespace {

using systolic::ArrayConfig;
using systolic::Dataflow;
using systolic::PrimitiveOp;

const systolic::MemoryConfig kMem;

std::vector<ArrayConfig> attribution_configs() {
  std::vector<ArrayConfig> configs;
  for (Dataflow dataflow : {Dataflow::kOutputStationary,
                            Dataflow::kWeightStationary,
                            Dataflow::kInputStationary}) {
    for (bool overlap : {false, true}) {
      ArrayConfig cfg;
      cfg.rows = 8;
      cfg.cols = 8;
      cfg.dataflow = dataflow;
      cfg.overlap_fold_drain = overlap;
      configs.push_back(cfg);
    }
  }
  return configs;
}

TEST(Attribution, PrimitiveSplitsSumToCycleModel) {
  // Every primitive kind, edge tiles included (dims not multiples of 8).
  for (const ArrayConfig& cfg : attribution_configs()) {
    for (const nn::LayerDesc& layer :
         {nn::make_conv("conv", 3, 19, 19, 11, 3, 2, 1),
          nn::make_depthwise("dw", 13, 9, 9, 3, 1, 1),
          nn::make_pointwise("pw", 13, 9, 9, 21),
          nn::make_fuse_row("row", 10, 9, 9, 3, 1, 1),
          nn::make_fuse_col("col", 10, 9, 9, 3, 1, 1)}) {
      const systolic::MappingPlan plan = systolic::lower(layer, cfg);
      for (const PrimitiveOp& op : plan.ops) {
        const systolic::LatencyEstimate total = op.total();
        const CycleSplit split = decompose_primitive(op, cfg);
        EXPECT_EQ(split.total(), total.cycles)
            << layer.name << " on " << systolic::dataflow_name(cfg.dataflow)
            << " overlap=" << cfg.overlap_fold_drain;
        EXPECT_GT(split.compute, 0u);
      }
    }
  }
}

TEST(Attribution, BroadcastFuseSplit) {
  ArrayConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.broadcast_links = true;
  const nn::LayerDesc row = nn::make_fuse_row("row", 10, 9, 9, 3, 1, 1);
  const systolic::MappingPlan plan = systolic::lower(row, cfg);
  ASSERT_EQ(plan.ops.size(), 1u);
  ASSERT_TRUE(plan.ops[0].broadcast);
  const CycleSplit split = decompose_primitive(plan.ops[0], cfg);
  EXPECT_EQ(split.total(), plan.ops[0].total().cycles);
}

TEST(Attribution, FoldWalkMatchesFoldCount) {
  for (const ArrayConfig& cfg : attribution_configs()) {
    const nn::LayerDesc dw = nn::make_depthwise("dw", 13, 9, 9, 3, 1, 1);
    for (const PrimitiveOp& op : systolic::lower(dw, cfg).ops) {
      std::uint64_t folds = 0;
      std::uint64_t macs = 0;
      CycleSplit sum;
      for_each_fold_split(op, cfg,
                          [&](const CycleSplit& split, std::uint64_t m) {
                            sum += split;
                            macs += m;
                            ++folds;
                          });
      const systolic::LatencyEstimate total = op.total();
      EXPECT_EQ(folds, total.folds);
      EXPECT_EQ(macs, total.mac_ops);
      EXPECT_EQ(sum.total(), total.cycles);
    }
  }
}

// The acceptance grid: every paper network x variant x sched mode closes
// the time, PE, and roofline identities (FUSE_CHECKed inside
// attribute_network; restated here against the plan's own numbers).
TEST(Attribution, AllNetworksVariantsModes) {
  ArrayConfig cfg;  // paper default array
  for (nets::NetworkId id : nets::paper_networks()) {
    for (core::NetworkVariant variant : core::all_network_variants()) {
      const VariantBuild build = build_variant(id, variant, cfg);
      for (SchedMode mode : {SchedMode::kPerLayer, SchedMode::kFused}) {
        const NetworkPlan plan =
            plan_network(build.model, cfg, kMem, mode);
        const AttributionReport report =
            attribute_network(plan, build.model);
        EXPECT_EQ(report.total_cycles, plan.total_cycles);
        EXPECT_EQ(report.total_split.total(), plan.total_cycles);
        EXPECT_EQ(report.pe_busy + report.pe_idle_geometry +
                      report.pe_idle_fill_drain,
                  report.pe_total);
        const NetworkRoofline roofline = plan_roofline(plan);
        EXPECT_EQ(report.bound_cycles, roofline.bound_cycles);
        EXPECT_EQ(report.bound_cycles,
                  report.total_cycles + report.total_dram_stall);
        EXPECT_EQ(report.layers.size(), plan.on_array.size());
        EXPECT_EQ(report.segments.size(), plan.segments.size());
        // Segment shares reproduce each layer's decomposition.
        std::vector<CycleSplit> per_layer(plan.layer_latency.size());
        for (const SegmentAttribution& sa : report.segments) {
          per_layer[sa.layer_index] += sa.split;
        }
        for (const LayerAttribution& la : report.layers) {
          EXPECT_EQ(per_layer[la.layer_index].total(), la.cycles)
              << la.name;
        }
        // By-class aggregation covers all attributed cycles.
        CycleSplit by_class_sum;
        for (int cls = 0; cls < 5; ++cls) {
          by_class_sum += report.by_class[cls];
        }
        EXPECT_EQ(by_class_sum.total(), report.total_cycles);
      }
    }
  }
}

TEST(Attribution, DepthwisePathologyVisible) {
  // The paper's core claim, as numbers: a depthwise layer's PE occupancy
  // is far below a FuSe row layer of the same slot geometry.
  ArrayConfig cfg;
  const VariantBuild baseline = build_variant(
      nets::NetworkId::kMobileNetV1, core::NetworkVariant::kBaseline, cfg);
  const VariantBuild fused = build_variant(
      nets::NetworkId::kMobileNetV1, core::NetworkVariant::kFuseFull, cfg);
  const AttributionReport base_report = attribute_network(
      plan_network(baseline.model, cfg, kMem, SchedMode::kPerLayer),
      baseline.model);
  const AttributionReport fuse_report = attribute_network(
      plan_network(fused.model, cfg, kMem, SchedMode::kPerLayer),
      fused.model);

  CycleSplit dw = base_report.by_class[static_cast<int>(
      OperatorClass::kDepthwise)];
  CycleSplit fu =
      fuse_report.by_class[static_cast<int>(OperatorClass::kFuse)];
  ASSERT_GT(dw.total(), 0u);
  ASSERT_GT(fu.total(), 0u);
  // FuSe replaces the depthwise cycles with far fewer total cycles...
  EXPECT_LT(fu.total(), dw.total() / 2);
  // ...and the whole-network occupancy rises.
  EXPECT_GT(fuse_report.occupancy(), base_report.occupancy());

  double dw_occ = 0.0, fuse_occ = 0.0;
  std::uint64_t dw_n = 0, fuse_n = 0;
  for (const LayerAttribution& la : base_report.layers) {
    if (la.op_class == OperatorClass::kDepthwise) {
      dw_occ += la.occupancy();
      ++dw_n;
    }
  }
  for (const LayerAttribution& la : fuse_report.layers) {
    if (la.op_class == OperatorClass::kFuse) {
      fuse_occ += la.occupancy();
      ++fuse_n;
    }
  }
  ASSERT_GT(dw_n, 0u);
  ASSERT_GT(fuse_n, 0u);
  EXPECT_GT(fuse_occ / fuse_n, dw_occ / dw_n);
}

TEST(Attribution, FusedDramStallNeverWorse) {
  ArrayConfig cfg;
  for (nets::NetworkId id : nets::paper_networks()) {
    const VariantBuild build =
        build_variant(id, core::NetworkVariant::kFuseFull, cfg);
    const AttributionReport per_layer = attribute_network(
        plan_network(build.model, cfg, kMem, SchedMode::kPerLayer),
        build.model);
    const AttributionReport fused = attribute_network(
        plan_network(build.model, cfg, kMem, SchedMode::kFused),
        build.model);
    EXPECT_LE(fused.total_dram_stall, per_layer.total_dram_stall)
        << nets::network_name(id);
    EXPECT_EQ(fused.total_cycles, per_layer.total_cycles);
  }
}

TEST(Attribution, JsonParsesAndCarriesTotals) {
  ArrayConfig cfg;
  const VariantBuild build = build_variant(
      nets::NetworkId::kMobileNetV2, core::NetworkVariant::kFuseFull, cfg);
  const NetworkPlan plan =
      plan_network(build.model, cfg, kMem, SchedMode::kFused);
  const AttributionReport report = attribute_network(plan, build.model);
  std::ostringstream out;
  write_attribution_json(out, report);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"cycles\": " + std::to_string(report.total_cycles)),
            std::string::npos);
  EXPECT_NE(json.find("\"sched_mode\": \"fused\""), std::string::npos);
  // Balanced braces/brackets as a cheap structural sanity check (full
  // parse-back runs in tools/check.sh via python3).
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Attribution, ReportTablesRender) {
  ArrayConfig cfg;
  const VariantBuild build = build_variant(
      nets::NetworkId::kMobileNetV1, core::NetworkVariant::kBaseline, cfg);
  const NetworkPlan plan =
      plan_network(build.model, cfg, kMem, SchedMode::kPerLayer);
  const AttributionReport report = attribute_network(plan, build.model);

  const std::string layers = attribution_layer_table(report, 5).to_string();
  EXPECT_NE(layers.find("fill/drain"), std::string::npos);
  EXPECT_NE(layers.find("total"), std::string::npos);
  EXPECT_NE(layers.find(std::to_string(report.total_cycles)),
            std::string::npos);

  const std::string classes = attribution_class_table(report).to_string();
  EXPECT_NE(classes.find("depthwise"), std::string::npos);
  EXPECT_NE(classes.find("100.0%"), std::string::npos);

  const std::string units = attribution_unit_table(report).to_string();
  EXPECT_NE(units.find("dram stall"), std::string::npos);
  EXPECT_NE(units.find(std::to_string(report.bound_cycles)),
            std::string::npos);
}

}  // namespace
}  // namespace fuse::sched
