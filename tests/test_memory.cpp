// Tests for the DRAM-traffic / roofline and energy extensions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hw/energy.hpp"
#include "sched/latency.hpp"
#include "systolic/memory.hpp"
#include "systolic/trace.hpp"
#include "util/check.hpp"

namespace fuse::systolic {
namespace {

ArrayConfig array64() { return square_array(64); }

// --- traffic counting ---------------------------------------------------------

TEST(MatmulTraffic, SingleFoldStreamsOperandsOnce) {
  const MemoryConfig mem;  // 2-byte operands
  const TrafficEstimate t = matmul_traffic(8, 16, 8, array64(), mem);
  EXPECT_EQ(t.input_bytes, 8ULL * 16 * 2);
  EXPECT_EQ(t.weight_bytes, 16ULL * 8 * 2);
  EXPECT_EQ(t.output_bytes, 8ULL * 8 * 2);
}

TEST(MatmulTraffic, ReStreamsPerFold) {
  const MemoryConfig mem;
  // N = 130 -> 3 column folds: A is read 3 times. M = 70 -> 2 row folds:
  // B is read twice.
  const TrafficEstimate t = matmul_traffic(70, 10, 130, array64(), mem);
  EXPECT_EQ(t.input_bytes, 70ULL * 10 * 3 * 2);
  EXPECT_EQ(t.weight_bytes, 10ULL * 130 * 2 * 2);
  EXPECT_EQ(t.output_bytes, 70ULL * 130 * 2);
}

TEST(ConvTraffic, Im2colInflatesInputReads) {
  // The lowered patch matrix carries each input value ~K^2 times.
  const MemoryConfig mem;
  const TrafficEstimate conv =
      conv_im2col_traffic(14, 14, 3, 3, 32, 16, array64(), mem);
  const std::uint64_t raw_input_bytes = 16ULL * 16 * 32 * 2;  // ~input map
  EXPECT_GT(conv.input_bytes, 5 * raw_input_bytes);
}

TEST(DepthwiseTraffic, ScalesWithChannels) {
  const MemoryConfig mem;
  const TrafficEstimate one =
      depthwise_im2col_traffic(1, 14, 14, 3, array64(), mem);
  const TrafficEstimate many =
      depthwise_im2col_traffic(32, 14, 14, 3, array64(), mem);
  EXPECT_EQ(many.total_bytes(), 32u * one.total_bytes());
}

TEST(FuseTraffic, NoIm2colInflation) {
  // FuSe reads each line value ~once per fold window; for one fold the
  // input traffic is line_out + k - 1 values per line — no K^2 blowup.
  const MemoryConfig mem;
  const TrafficEstimate t = fuse1d_traffic(32, 56, 3, array64(), mem);
  EXPECT_EQ(t.input_bytes, 32ULL * (56 + 3 - 1) * 2);
  EXPECT_EQ(t.weight_bytes, 32ULL * 3 * 2);
  EXPECT_EQ(t.output_bytes, 32ULL * 56 * 2);
}

TEST(FuseTraffic, LessTrafficThanDepthwiseForSameWork) {
  // 32 channels of 56x56, K=3: FuSe rows+cols move far fewer bytes than
  // the depthwise im2col lowering.
  const MemoryConfig mem;
  const TrafficEstimate dw =
      depthwise_im2col_traffic(32, 56, 56, 3, array64(), mem);
  TrafficEstimate fuse = fuse1d_traffic(32 * 56, 56, 3, array64(), mem);
  fuse += fuse1d_traffic(32 * 56, 56, 3, array64(), mem);  // col branch
  EXPECT_GT(dw.total_bytes(), 2 * fuse.total_bytes());
}

TEST(Traffic, MemoryCyclesScaleWithBandwidth) {
  MemoryConfig slow;
  slow.dram_bytes_per_cycle = 4.0;
  MemoryConfig fast;
  fast.dram_bytes_per_cycle = 64.0;
  const TrafficEstimate t = matmul_traffic(64, 64, 64, array64(), slow);
  EXPECT_EQ(t.memory_cycles(slow), 16u * t.memory_cycles(fast));
}

TEST(Traffic, InvalidConfigThrows) {
  MemoryConfig bad;
  bad.dram_bytes_per_cycle = 0.0;
  EXPECT_THROW(bad.validate(), util::Error);
  EXPECT_THROW(matmul_traffic(0, 1, 1, array64(), MemoryConfig{}),
               util::Error);
}


// --- fold traces ----------------------------------------------------------------

TEST(FoldTrace, MatmulTraceMatchesAnalyticCycles) {
  const MemoryConfig mem;
  for (bool overlap : {false, true}) {
    ArrayConfig cfg = square_array(8);
    cfg.overlap_fold_drain = overlap;
    const FoldTrace trace = matmul_trace(20, 6, 17, cfg, mem);
    EXPECT_EQ(trace.total_cycles, matmul_latency(20, 6, 17, cfg).cycles)
        << "overlap=" << overlap;
    EXPECT_EQ(trace.folds.size(),
              static_cast<std::size_t>(matmul_latency(20, 6, 17, cfg).folds));
  }
}

TEST(FoldTrace, FoldsAreContiguous) {
  const MemoryConfig mem;
  const FoldTrace trace = matmul_trace(20, 6, 17, square_array(8), mem);
  std::uint64_t cursor = 0;
  for (const FoldRecord& fold : trace.folds) {
    EXPECT_EQ(fold.start_cycle, cursor);
    EXPECT_GT(fold.end_cycle, fold.start_cycle);
    cursor = fold.end_cycle;
  }
}

TEST(FoldTrace, Fuse1dTraceMatchesAnalytic) {
  const MemoryConfig mem;
  const ArrayConfig cfg = square_array(8);
  const FoldTrace trace = fuse1d_trace(20, 14, 3, cfg, mem);
  EXPECT_EQ(trace.total_cycles, fuse1d_latency(20, 14, 3, cfg).cycles);
}

TEST(FoldTrace, DoubleBufferSizing) {
  // A full 8x8 fold with depth 6 at 2 bytes: A tile 8*6*2 = 96 B, B tile
  // 6*8*2 = 96 B, C tile 8*8*2 = 128 B -> 320 B per fold, 640 B double
  // buffered.
  const MemoryConfig mem;
  const FoldTrace trace = matmul_trace(8, 6, 8, square_array(8), mem);
  EXPECT_EQ(trace.peak_fold_bytes(), 96u + 96 + 128);
  EXPECT_EQ(trace.double_buffer_bytes(), 2 * (96u + 96 + 128));
}

TEST(FoldTrace, CsvHasOneRowPerFold) {
  const MemoryConfig mem;
  const FoldTrace trace = matmul_trace(20, 6, 17, square_array(8), mem);
  const std::string path = testing::TempDir() + "/fuse_folds.csv";
  write_fold_trace_csv(trace, path);
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, trace.folds.size() + 1);
  std::remove(path.c_str());
}

TEST(FoldTrace, RequiresBroadcastForFuse) {
  const MemoryConfig mem;
  EXPECT_THROW(fuse1d_trace(4, 4, 3, square_array(8, false), mem),
               util::Error);
}

}  // namespace
}  // namespace fuse::systolic

namespace fuse::sched {
namespace {

using systolic::MemoryConfig;

TEST(Roofline, ComputeBoundAtInfiniteBandwidth) {
  MemoryConfig mem;
  mem.dram_bytes_per_cycle = 1e12;
  const auto model = nets::build_network(nets::NetworkId::kMobileNetV2);
  const auto cfg = systolic::square_array(64);
  const NetworkRoofline roofline = network_roofline(model, cfg, mem);
  EXPECT_EQ(roofline.bound_cycles, roofline.compute_cycles);
  EXPECT_EQ(roofline.memory_bound_layers, 0);
}

TEST(Roofline, MemoryBoundAtTinyBandwidth) {
  MemoryConfig mem;
  mem.dram_bytes_per_cycle = 0.25;
  const auto model = nets::build_network(nets::NetworkId::kMobileNetV2);
  const auto cfg = systolic::square_array(64);
  const NetworkRoofline roofline = network_roofline(model, cfg, mem);
  EXPECT_GT(roofline.memory_cycles, roofline.compute_cycles);
  EXPECT_GT(roofline.memory_bound_layers, 30);
}

TEST(Roofline, BoundIsAtLeastBothComponentsPerLayer) {
  MemoryConfig mem;  // default 16 B/cycle: mixed regime
  const auto model = nets::build_network(nets::NetworkId::kMnasNetB1);
  const auto cfg = systolic::square_array(64);
  const NetworkRoofline roofline = network_roofline(model, cfg, mem);
  EXPECT_GE(roofline.bound_cycles, roofline.compute_cycles);
  EXPECT_GE(roofline.bound_cycles, roofline.memory_cycles);
  // Summed per-layer max is at most compute + memory.
  EXPECT_LE(roofline.bound_cycles,
            roofline.compute_cycles + roofline.memory_cycles);
}

TEST(Roofline, SpeedupConvergesToComputeOnlyAtHighBandwidth) {
  const auto cfg = systolic::square_array(64);
  MemoryConfig generous;
  generous.dram_bytes_per_cycle = 1e12;
  const double roofline = roofline_speedup(
      nets::NetworkId::kMobileNetV1, core::NetworkVariant::kFuseHalf, cfg,
      generous);
  const double compute_only = speedup_vs_baseline(
      nets::NetworkId::kMobileNetV1, core::NetworkVariant::kFuseHalf, cfg);
  EXPECT_NEAR(roofline, compute_only, 1e-6);
}

TEST(Roofline, SpeedupShrinksButSurvivesAtLowBandwidth) {
  const auto cfg = systolic::square_array(64);
  MemoryConfig scarce;
  scarce.dram_bytes_per_cycle = 1.0;
  const double speedup = roofline_speedup(
      nets::NetworkId::kMobileNetV2, core::NetworkVariant::kFuseHalf, cfg,
      scarce);
  EXPECT_GT(speedup, 1.2);  // im2col traffic keeps the baseline behind
  EXPECT_LT(speedup, 4.0);  // but the compute win is mostly gone
}

// --- energy ---------------------------------------------------------------------

TEST(Energy, DecompositionAddsUp) {
  const hw::EnergyModel model;
  const hw::EnergyReport report =
      hw::operator_energy(1000, 500, 64 * 64, 2048, model);
  EXPECT_NEAR(report.total_nj(),
              report.mac_nj + report.idle_nj + report.sram_nj +
                  report.dram_nj,
              1e-9);
  EXPECT_NEAR(report.mac_nj, 1000 * model.mac_pj * 1e-3, 1e-9);
  EXPECT_NEAR(report.dram_nj, 2048 * model.dram_pj_per_byte * 1e-3, 1e-9);
}

TEST(Energy, FuseVariantCutsIdleEnergy) {
  // The baseline's under-utilized array burns idle energy; FuSe's fewer
  // busy cycles cut it by several times.
  const auto cfg = systolic::square_array(64);
  const MemoryConfig mem;
  const hw::EnergyModel energy;
  const auto base = nets::build_network(nets::NetworkId::kMobileNetV2);
  const auto half = nets::build_network(
      nets::NetworkId::kMobileNetV2,
      core::uniform_modes(17, core::FuseMode::kHalf));
  const hw::EnergyReport base_report =
      network_energy(base, cfg, mem, energy);
  const hw::EnergyReport half_report =
      network_energy(half, cfg, mem, energy);
  EXPECT_GT(base_report.idle_nj, 5.0 * half_report.idle_nj);
  EXPECT_LT(half_report.total_nj(), base_report.total_nj());
}

TEST(Energy, InvalidModelThrows) {
  hw::EnergyModel bad;
  bad.mac_pj = 0.0;
  EXPECT_THROW(bad.validate(), util::Error);
}

}  // namespace
}  // namespace fuse::sched
