// Tests for the scheduler: layer->latency mapping, network totals, operator
// breakdowns, 50% slot selection, and the qualitative shape of the paper's
// headline results.
#include <gtest/gtest.h>

#include "sched/latency.hpp"
#include "sched/report.hpp"
#include "util/check.hpp"

namespace fuse::sched {
namespace {

using core::FuseMode;
using nets::NetworkId;
using nn::LayerDesc;
using nn::OpKind;

ArrayConfig paper_array() { return systolic::square_array(64); }

// --- layer_latency mappings ---------------------------------------------------

TEST(LayerLatency, StandardConvUsesIm2colMapping) {
  const LayerDesc l = nn::make_conv("c", 32, 28, 28, 64, 3, 1, 1);
  const ArrayConfig cfg = paper_array();
  EXPECT_EQ(layer_latency(l, cfg).cycles,
            systolic::conv_im2col_latency(28, 28, 3, 3, 32, 64, cfg).cycles);
}

TEST(LayerLatency, DepthwiseUsesSingleColumnMapping) {
  const LayerDesc l = nn::make_depthwise("dw", 32, 28, 28, 3, 1, 1);
  const ArrayConfig cfg = paper_array();
  EXPECT_EQ(
      layer_latency(l, cfg).cycles,
      systolic::depthwise_im2col_latency(32, 28, 28, 3, cfg).cycles);
}

TEST(LayerLatency, PointwiseIsAMatmul) {
  const LayerDesc l = nn::make_pointwise("pw", 32, 28, 28, 64);
  const ArrayConfig cfg = paper_array();
  EXPECT_EQ(layer_latency(l, cfg).cycles,
            systolic::matmul_latency(28 * 28, 32, 64, cfg).cycles);
}

TEST(LayerLatency, FuseRowCountsChannelTimesRows) {
  const LayerDesc l = nn::make_fuse_row("r", 16, 28, 28, 3, 1, 1);
  const ArrayConfig cfg = paper_array();
  EXPECT_EQ(layer_latency(l, cfg).cycles,
            systolic::fuse1d_latency(16 * 28, 28, 3, cfg).cycles);
}

TEST(LayerLatency, FuseColCountsChannelTimesCols) {
  const LayerDesc l = nn::make_fuse_col("c", 16, 20, 30, 3, 1, 1);
  const ArrayConfig cfg = paper_array();
  // Column lines: one per (channel, output column) = 16 * 30; each spans
  // the 20 output rows.
  EXPECT_EQ(layer_latency(l, cfg).cycles,
            systolic::fuse1d_latency(16 * 30, 20, 3, cfg).cycles);
}

TEST(LayerLatency, StridedFuseRowComputesDenseAndDiscards) {
  // Horizontal stride 2: the shift-register flow cannot skip outputs, so
  // the dense width (28 + 2 - 3 + 1 = 28) is computed per line; whole
  // lines along the strided vertical axis ARE skipped (out_h = 14).
  const LayerDesc l = nn::make_fuse_row("r", 16, 28, 28, 3, 2, 1);
  const ArrayConfig cfg = paper_array();
  EXPECT_EQ(l.out_h, 14);
  EXPECT_EQ(layer_latency(l, cfg).cycles,
            systolic::fuse1d_latency(16 * 14, 28, 3, cfg).cycles);

  // The optimistic addressing mode computes only needed outputs.
  ArrayConfig optimistic = cfg;
  optimistic.strided_fuse_dense_compute = false;
  EXPECT_EQ(layer_latency(l, optimistic).cycles,
            systolic::fuse1d_latency(16 * 14, 14, 3, optimistic).cycles);
  EXPECT_LT(layer_latency(l, optimistic).cycles,
            layer_latency(l, cfg).cycles);
}

TEST(LayerLatency, FuseWithoutBroadcastFallsBack) {
  const LayerDesc l = nn::make_fuse_row("r", 16, 28, 28, 3, 1, 1);
  ArrayConfig cfg = systolic::square_array(64, /*broadcast=*/false);
  EXPECT_EQ(
      layer_latency(l, cfg).cycles,
      systolic::fuse1d_no_broadcast_latency(16 * 28, 28, 3, cfg).cycles);
  // Without the proposed links FuSe is much slower than with them.
  EXPECT_GT(layer_latency(l, cfg).cycles,
            10 * layer_latency(l, paper_array()).cycles);
}

TEST(LayerLatency, GlueOpsAreFree) {
  LayerDesc pool;
  pool.kind = OpKind::kGlobalAvgPool;
  pool.in_c = pool.out_c = 32;
  pool.in_h = pool.in_w = 7;
  pool.out_h = pool.out_w = 1;
  EXPECT_EQ(layer_latency(pool, paper_array()).cycles, 0u);
}

TEST(LayerLatency, FullyConnectedMapped) {
  const LayerDesc l = nn::make_fully_connected("fc", 1024, 1000);
  const ArrayConfig cfg = paper_array();
  EXPECT_EQ(layer_latency(l, cfg).cycles,
            systolic::fully_connected_latency(1024, 1000, cfg).cycles);
}

// --- network latency ----------------------------------------------------------

TEST(NetworkLatency, TotalsEqualSumOfLayers) {
  const auto model = nets::build_network(NetworkId::kMobileNetV2);
  const ArrayConfig cfg = paper_array();
  const NetworkLatency lat = network_latency(model, cfg);
  std::uint64_t sum = 0;
  for (const auto& est : lat.per_layer) {
    sum += est.cycles;
  }
  EXPECT_EQ(lat.total_cycles, sum);
  EXPECT_EQ(lat.per_layer.size(), model.layers.size());
  EXPECT_GT(lat.total_cycles, 0u);
}

TEST(NetworkLatency, UtilizationIsAFraction) {
  const auto model = nets::build_network(NetworkId::kMobileNetV1);
  const ArrayConfig cfg = paper_array();
  const double util = network_latency(model, cfg).utilization(cfg);
  EXPECT_GT(util, 0.0);
  EXPECT_LT(util, 1.0);
}

TEST(NetworkLatency, FuseVariantImprovesUtilization) {
  const ArrayConfig cfg = paper_array();
  const auto base = nets::build_network(NetworkId::kMobileNetV1);
  const auto full = nets::build_network(
      NetworkId::kMobileNetV1, core::uniform_modes(13, FuseMode::kFull));
  EXPECT_GT(network_latency(full, cfg).utilization(cfg),
            network_latency(base, cfg).utilization(cfg));
}

// --- operator breakdown (Fig. 8c) ----------------------------------------------

TEST(OperatorBreakdown, BaselineDominatedByDepthwise) {
  // Fig. 8(c) prose says 30-50%, but Table I's own speedups (up to 7.23x)
  // require >= ~85% of baseline latency to be removable (Amdahl), so the
  // consistent value is higher; our model lands at 0.85-0.92. We assert
  // the qualitative claim: depthwise dominates baseline latency, and by an
  // amount consistent with the reported end-to-end speedups.
  const ArrayConfig cfg = paper_array();
  for (NetworkId id : nets::paper_networks()) {
    const auto model = nets::build_network(id);
    const OperatorBreakdown b = operator_breakdown(model, cfg);
    const double dw_frac = b.fraction(OperatorClass::kDepthwise);
    EXPECT_GT(dw_frac, 0.5) << nets::network_name(id);
    EXPECT_LT(dw_frac, 0.95) << nets::network_name(id);
    // Amdahl consistency: the Half-variant speedup cannot exceed the
    // depthwise share's reciprocal by much.
    const double half = speedup_vs_baseline(
        id, core::NetworkVariant::kFuseHalf, cfg);
    EXPECT_LT(half, 1.0 / (1.0 - dw_frac) * 1.15) << nets::network_name(id);
  }
}

TEST(OperatorBreakdown, FuseNetworksShiftToPointwise) {
  // Paper: after the transform, FuSe operators account for only 4-11% and
  // pointwise dominates.
  const ArrayConfig cfg = paper_array();
  for (NetworkId id : nets::paper_networks()) {
    const int slots = nets::num_fuse_slots(id);
    const auto fused =
        nets::build_network(id, core::uniform_modes(slots, FuseMode::kFull));
    const OperatorBreakdown b = operator_breakdown(fused, cfg);
    EXPECT_EQ(b.of(OperatorClass::kDepthwise), 0u);
    const double fuse_frac = b.fraction(OperatorClass::kFuse);
    EXPECT_LT(fuse_frac, 0.25) << nets::network_name(id);
    EXPECT_GT(b.fraction(OperatorClass::kPointwise), fuse_frac)
        << nets::network_name(id);
  }
}

TEST(OperatorBreakdown, FractionsSumToOne) {
  const auto model = nets::build_network(NetworkId::kMnasNetB1);
  const OperatorBreakdown b = operator_breakdown(model, paper_array());
  double sum = 0.0;
  for (int i = 0; i < 5; ++i) {
    sum += b.fraction(static_cast<OperatorClass>(i));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(OperatorBreakdown, ClassNames) {
  EXPECT_EQ(operator_class_name(OperatorClass::kDepthwise), "depthwise");
  EXPECT_EQ(operator_class_name(OperatorClass::kFuse), "fuse");
}

// --- slot savings / 50% variants ------------------------------------------------

TEST(SlotSavings, AllSlotsSaveCyclesOnThePaperArray) {
  const auto savings =
      slot_savings(NetworkId::kMobileNetV2, FuseMode::kHalf, paper_array());
  EXPECT_EQ(savings.size(), 17u);
  for (double s : savings) {
    EXPECT_GT(s, 0.0);
  }
}

TEST(SlotSavings, EarlyLayersSaveMore) {
  // Fig. 8(b): initial layers with larger feature maps benefit more. The
  // first depthwise slot must save more cycles than the last.
  const auto savings =
      slot_savings(NetworkId::kMobileNetV2, FuseMode::kFull, paper_array());
  EXPECT_GT(savings.front(), savings.back());
}

TEST(BuildVariant, FiftyPercentReplacesHalfTheSlots) {
  const VariantBuild build = build_variant(
      NetworkId::kMobileNetV1, core::NetworkVariant::kFuseHalf50,
      paper_array());
  int replaced = 0;
  for (FuseMode m : build.modes) {
    if (m != FuseMode::kBaseline) {
      ++replaced;
    }
  }
  EXPECT_EQ(replaced, 7);  // ceil(13/2)
}

TEST(BuildVariant, BaselineHasNoFuseLayers) {
  const VariantBuild build = build_variant(
      NetworkId::kMobileNetV2, core::NetworkVariant::kBaseline,
      paper_array());
  for (const LayerDesc& l : build.model.layers) {
    EXPECT_NE(l.kind, OpKind::kFuseRowConv);
    EXPECT_NE(l.kind, OpKind::kFuseColConv);
  }
}

// --- headline speedups (Table I shape) -------------------------------------------

TEST(Speedup, HalfVariantInPaperBand) {
  // Paper: 4.16x-7.23x on 64x64. Allow a generous band around it (our
  // latency model is a reimplementation, not the authors' code).
  for (NetworkId id : nets::paper_networks()) {
    const double s = speedup_vs_baseline(
        id, core::NetworkVariant::kFuseHalf, paper_array());
    EXPECT_GT(s, 3.5) << nets::network_name(id);
    EXPECT_LT(s, 12.0) << nets::network_name(id);
  }
}

TEST(Speedup, FullVariantInPaperBand) {
  // Paper: 3.02x-5.1x.
  for (NetworkId id : nets::paper_networks()) {
    const double s = speedup_vs_baseline(
        id, core::NetworkVariant::kFuseFull, paper_array());
    EXPECT_GT(s, 2.5) << nets::network_name(id);
    EXPECT_LT(s, 9.0) << nets::network_name(id);
  }
}

TEST(Speedup, OrderingHalfBeatsFullBeats50) {
  for (NetworkId id : nets::paper_networks()) {
    const ArrayConfig cfg = paper_array();
    const double half =
        speedup_vs_baseline(id, core::NetworkVariant::kFuseHalf, cfg);
    const double full =
        speedup_vs_baseline(id, core::NetworkVariant::kFuseFull, cfg);
    const double half50 =
        speedup_vs_baseline(id, core::NetworkVariant::kFuseHalf50, cfg);
    EXPECT_GT(half, full) << nets::network_name(id);
    EXPECT_GT(full, half50) << nets::network_name(id);
    EXPECT_GT(half50, 1.0) << nets::network_name(id);
  }
}

TEST(Speedup, FullVariantFasterDespiteMoreMacs) {
  // The paper's central counterintuitive: Full has MORE MACs than baseline
  // yet is much faster, because the mapping, not the arithmetic, dominates.
  const NetworkId id = NetworkId::kMobileNetV2;
  const ArrayConfig cfg = paper_array();
  const VariantBuild base =
      build_variant(id, core::NetworkVariant::kBaseline, cfg);
  const VariantBuild full =
      build_variant(id, core::NetworkVariant::kFuseFull, cfg);
  EXPECT_GT(full.model.total_macs(), base.model.total_macs());
  EXPECT_GT(speedup_vs_baseline(id, core::NetworkVariant::kFuseFull, cfg),
            2.0);
}

// --- scaling (Fig. 8d) --------------------------------------------------------

TEST(Scaling, SpeedupGrowsWithArraySize) {
  const auto points = scaling_sweep(
      NetworkId::kMobileNetV1, core::NetworkVariant::kFuseHalf,
      {8, 16, 32, 64, 128});
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].speedup, points[i - 1].speedup)
        << "size " << points[i].array_size;
  }
}

TEST(Scaling, LargerNetworkGainsMoreOnLargeArrays) {
  // Paper: MobileNet-V1 (larger, older) shows higher speedup on large
  // arrays than MobileNet-V3-Small (newer, smaller).
  const ArrayConfig big = systolic::square_array(128);
  const double v1 = speedup_vs_baseline(
      NetworkId::kMobileNetV1, core::NetworkVariant::kFuseHalf, big);
  const double v3s = speedup_vs_baseline(
      NetworkId::kMobileNetV3Small, core::NetworkVariant::kFuseHalf, big);
  EXPECT_GT(v1, v3s);
}

// --- report builders ------------------------------------------------------------

TEST(Table1Rows, TwentyFiveRowsWithPaperReferences) {
  const auto rows = table1_rows(paper_array());
  ASSERT_EQ(rows.size(), 25u);
  for (const Table1Row& row : rows) {
    EXPECT_GT(row.cycles, 0u);
    EXPECT_GT(row.paper_accuracy, 60.0);  // every paper row has accuracy
    if (row.variant == core::NetworkVariant::kBaseline) {
      EXPECT_DOUBLE_EQ(row.speedup, 1.0);
    } else {
      EXPECT_GT(row.speedup, 1.0);
    }
  }
}

TEST(Table1Rows, MacsTrackPaperWithinTolerance) {
  // MAC counts should be within ~15% of the paper's column for baselines.
  for (const Table1Row& row : table1_rows(paper_array())) {
    if (row.variant != core::NetworkVariant::kBaseline) {
      continue;
    }
    const double measured = static_cast<double>(row.macs) / 1e6;
    EXPECT_NEAR(measured, row.paper_macs_millions,
                row.paper_macs_millions * 0.16)
        << nets::network_name(row.network);
  }
}

TEST(LayerwiseSpeedup, V2FullShapeMatchesFig8b) {
  // Paper: per-layer speedups range 2.48x-9.38x, larger for early layers.
  const auto slots = layerwise_speedup(NetworkId::kMobileNetV2,
                                       FuseMode::kFull, paper_array());
  ASSERT_EQ(slots.size(), 17u);
  for (const SlotSpeedup& s : slots) {
    EXPECT_GT(s.speedup, 1.3) << s.name;
    EXPECT_LT(s.speedup, 16.0) << s.name;
  }
  EXPECT_GT(slots.front().speedup, slots.back().speedup);
  // Metadata captured from the baseline depthwise layer.
  EXPECT_EQ(slots.front().in_h, 112);
  EXPECT_FALSE(slots.front().name.empty());
}


TEST(ConvMapping, ChannelwiseKnobChangesStandardConvOnly) {
  ArrayConfig channelwise = paper_array();
  channelwise.standard_conv_mapping =
      systolic::StandardConvMapping::kChannelwise;
  const ArrayConfig im2col = paper_array();

  const LayerDesc conv = nn::make_conv("c", 32, 28, 28, 64, 3, 1, 1);
  EXPECT_EQ(layer_latency(conv, channelwise).cycles,
            systolic::conv_channelwise_latency(28, 28, 3, 3, 32, 64,
                                               channelwise)
                .cycles);
  EXPECT_NE(layer_latency(conv, channelwise).cycles,
            layer_latency(conv, im2col).cycles);

  // Depthwise and pointwise layers are untouched by the knob.
  const LayerDesc dw = nn::make_depthwise("dw", 32, 28, 28, 3, 1, 1);
  EXPECT_EQ(layer_latency(dw, channelwise).cycles,
            layer_latency(dw, im2col).cycles);
  const LayerDesc pw = nn::make_pointwise("pw", 32, 28, 28, 64);
  EXPECT_EQ(layer_latency(pw, channelwise).cycles,
            layer_latency(pw, im2col).cycles);
}

TEST(ConvMapping, FuseSpeedupSurvivesChannelwiseMapping) {
  // The headline result does not hinge on how the few dense convs map.
  ArrayConfig cfg = paper_array();
  cfg.standard_conv_mapping =
      systolic::StandardConvMapping::kChannelwise;
  const double speedup = speedup_vs_baseline(
      NetworkId::kMobileNetV2, core::NetworkVariant::kFuseHalf, cfg);
  EXPECT_GT(speedup, 5.0);
}

TEST(ConvMapping, ChannelwiseWinsForChannelHeavyConvs) {
  // Fig. 3(b)'s motivation: deep-channel convs fill both dimensions via
  // channel dot products without materializing im2col's K^2-taller
  // reduction. For the stem conv (3 input channels) im2col is better; for
  // a deep 3x3 conv channelwise is competitive.
  const ArrayConfig cfg = paper_array();
  const LayerDesc stem = nn::make_conv("stem", 3, 224, 224, 32, 3, 2, 1);
  EXPECT_LT(
      systolic::conv_im2col_latency(112, 112, 3, 3, 3, 32, cfg).cycles,
      systolic::conv_channelwise_latency(112, 112, 3, 3, 3, 32, cfg)
          .cycles);
  (void)stem;
}

}  // namespace
}  // namespace fuse::sched
