// The SweepEngine's headline guarantee: results are BYTE-IDENTICAL for any
// thread count and with the memoization cache on or off, and they equal
// the serial free-function reference path. A deterministic parallel sweep
// is what lets bench output stay diffable against results/ regardless of
// the host's core count. Serialization below is exhaustive (every field,
// full precision) so any divergence — value or ordering — trips the
// string comparison.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sched/latency.hpp"
#include "sched/sweep.hpp"
#include "util/telemetry.hpp"
#include "util/trace_sink.hpp"

namespace fuse::sched {
namespace {

systolic::ArrayConfig paper_array() { return systolic::square_array(64); }

const std::vector<std::int64_t>& scaling_sizes() {
  static const std::vector<std::int64_t> sizes = {8, 16, 32, 64, 128, 256};
  return sizes;
}

// Every field of every row, full precision; ordering differences show up
// as string differences.
std::string serialize(const std::vector<Table1Row>& rows) {
  std::ostringstream out;
  out.precision(17);
  for (const Table1Row& r : rows) {
    out << static_cast<int>(r.network) << '|' << static_cast<int>(r.variant)
        << '|' << r.macs << '|' << r.params << '|' << r.cycles << '|'
        << r.speedup << '|' << r.paper_accuracy << '|'
        << r.paper_macs_millions << '|' << r.paper_params_millions << '|'
        << r.paper_speedup << '\n';
  }
  return out.str();
}

std::string serialize(const std::vector<ScalingPoint>& points) {
  std::ostringstream out;
  out.precision(17);
  for (const ScalingPoint& p : points) {
    out << p.array_size << '|' << p.speedup << '\n';
  }
  return out.str();
}

std::string serialize(const NetworkLatency& net) {
  std::ostringstream out;
  out << net.total_cycles;
  for (const auto& layer : net.per_layer) {
    out << '\n'
        << layer.cycles << '|' << layer.folds << '|' << layer.mac_ops
        << '|' << layer.pe_count;
  }
  return out.str();
}

// One full sweep workload under the given options, serialized.
std::string run_workload(const SweepOptions& options) {
  SweepEngine engine(options);
  std::ostringstream out;
  out << serialize(engine.table1_rows(paper_array()));
  for (nets::NetworkId id : nets::paper_networks()) {
    out << serialize(engine.scaling_sweep(
        id, core::NetworkVariant::kFuseHalf, scaling_sizes()));
  }
  out << serialize(engine.network_latency(
      nets::build_network(nets::NetworkId::kMobileNetV2), paper_array()));
  return out.str();
}

TEST(SweepDeterminism, ByteIdenticalAcrossThreadCounts) {
  const std::string reference =
      run_workload({.threads = 1, .use_cache = true});
  for (int threads : {0, 2, 8}) {
    EXPECT_EQ(run_workload({.threads = threads, .use_cache = true}),
              reference)
        << "threads=" << threads;
  }
}

TEST(SweepDeterminism, ByteIdenticalWithCacheOnAndOff) {
  for (int threads : {1, 8}) {
    EXPECT_EQ(run_workload({.threads = threads, .use_cache = false}),
              run_workload({.threads = threads, .use_cache = true}))
        << "threads=" << threads;
  }
}

TEST(SweepDeterminism, RepeatedRunsOnOneEngineAreStable) {
  // Second run hits a warm cache everywhere; results must not move.
  SweepEngine engine({.threads = 8, .use_cache = true});
  const auto first = serialize(engine.table1_rows(paper_array()));
  const auto second = serialize(engine.table1_rows(paper_array()));
  EXPECT_EQ(first, second);
  EXPECT_GT(engine.stats().cache_hits, 0u);
}

TEST(SweepDeterminism, EngineMatchesSerialFreeFunctions) {
  SweepEngine engine({.threads = 8, .use_cache = true});
  const auto cfg = paper_array();
  for (nets::NetworkId id : nets::paper_networks()) {
    const auto model = nets::build_network(id);
    // Free sched::network_latency with no cache argument is the serial
    // reference implementation.
    EXPECT_EQ(serialize(engine.network_latency(model, cfg)),
              serialize(network_latency(model, cfg)))
        << nets::network_name(id);
    EXPECT_EQ(engine.network_cycles(model, cfg),
              network_latency(model, cfg).total_cycles)
        << nets::network_name(id);
  }
}

TEST(SweepDeterminism, GoldenConstantsSurviveTheParallelEngine) {
  // The same pinned values as test_golden.cpp, but produced through a
  // multi-threaded cached engine.
  SweepEngine engine({.threads = 8, .use_cache = true});
  const auto cfg = paper_array();
  struct Expected {
    nets::NetworkId id;
    std::uint64_t cycles;
    double half_speedup;
  };
  const Expected expected[] = {
      {nets::NetworkId::kMobileNetV1, 2594775, 7.90},
      {nets::NetworkId::kMobileNetV2, 3128106, 8.96},
      {nets::NetworkId::kMnasNetB1, 2984050, 9.30},
      {nets::NetworkId::kMobileNetV3Small, 738162, 6.01},
      {nets::NetworkId::kMobileNetV3Large, 2109939, 6.85},
  };
  for (const Expected& e : expected) {
    const auto model = nets::build_network(e.id);
    EXPECT_EQ(engine.network_latency(model, cfg).total_cycles, e.cycles)
        << nets::network_name(e.id);
    EXPECT_NEAR(engine.speedup_vs_baseline(
                    e.id, core::NetworkVariant::kFuseHalf, cfg),
                e.half_speedup, 0.005)
        << nets::network_name(e.id);
  }
}

TEST(SweepDeterminism, CacheStatsAccountForEveryLookup) {
  SweepEngine engine({.threads = 2, .use_cache = true});
  const auto model = nets::build_network(nets::NetworkId::kMobileNetV2);
  const auto cfg = paper_array();
  const std::uint64_t layers =
      static_cast<std::uint64_t>(model.layers.size());

  engine.network_latency(model, cfg);
  SweepStats stats = engine.stats();
  EXPECT_EQ(stats.threads, 2);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, layers);
  EXPECT_EQ(stats.cache_entries, stats.cache_misses);
  const std::uint64_t first_misses = stats.cache_misses;

  // A second pass over the same network is all hits.
  engine.network_latency(model, cfg);
  stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, first_misses);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 2 * layers);
}

TEST(SweepDeterminism, CacheOffEngineReportsNoCacheTraffic) {
  SweepEngine engine({.threads = 2, .use_cache = false});
  engine.network_latency(
      nets::build_network(nets::NetworkId::kMobileNetV1), paper_array());
  const SweepStats stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST(SweepDeterminism, ByteIdenticalWithTelemetryAttached) {
  // Tracing and stats export must never perturb results: the same
  // workload with a global trace sink attached (what --trace-json +
  // --stats-json enable in the benches) serializes identically.
  const std::string reference =
      run_workload({.threads = 8, .use_cache = true});

  util::TraceSink sink;
  util::set_global_trace_sink(&sink);
  const std::string traced = run_workload({.threads = 8, .use_cache = true});
  util::set_global_trace_sink(nullptr);
  std::ostringstream stats_json;
  util::metrics().write_json(stats_json);

  EXPECT_EQ(traced, reference);
  if (util::telemetry_enabled()) {
    EXPECT_GT(sink.event_count(), 0u);
    EXPECT_FALSE(stats_json.str().empty());
  }
}

TEST(SweepDeterminism, StatsLineMentionsThreadsAndCacheState) {
  SweepEngine cached({.threads = 3, .use_cache = true});
  const std::string on = sweep_stats_line(cached, 1.5);
  EXPECT_NE(on.find("3 threads"), std::string::npos) << on;
  EXPECT_NE(on.find("cache"), std::string::npos) << on;

  SweepEngine uncached({.threads = 1, .use_cache = false});
  const std::string off = sweep_stats_line(uncached, 0.25);
  EXPECT_NE(off.find("cache off"), std::string::npos) << off;
}

}  // namespace
}  // namespace fuse::sched
