// Tests for the cycle-level PE-grid simulator: functional results must
// match the fuse::nn reference, and cycle counts must match the analytic
// model exactly (non-overlapped mode).
#include <gtest/gtest.h>

#include "nn/ops.hpp"
#include "systolic/cycle_model.hpp"
#include "systolic/sim.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fuse::systolic {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

ArrayConfig array_no_overlap(std::int64_t size) {
  ArrayConfig cfg = square_array(size);
  cfg.overlap_fold_drain = false;
  return cfg;
}

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

// --- output-stationary matmul -----------------------------------------------

TEST(SimMatmul, HandComputed2x2) {
  SystolicArraySim sim(square_array(4));
  const Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor b(Shape{2, 2}, {5, 6, 7, 8});
  const SimResult result = sim.matmul(a, b);
  EXPECT_EQ(result.output.at(0, 0), 19.0F);
  EXPECT_EQ(result.output.at(1, 1), 50.0F);
}

TEST(SimMatmul, MatchesReferenceWithinOneFold) {
  SystolicArraySim sim(square_array(8));
  const Tensor a = random_tensor(Shape{8, 16}, 1);
  const Tensor b = random_tensor(Shape{16, 8}, 2);
  const SimResult result = sim.matmul(a, b);
  EXPECT_TRUE(allclose(result.output, nn::matmul(a, b), 1e-4F, 1e-5F));
}

TEST(SimMatmul, MatchesReferenceAcrossFolds) {
  SystolicArraySim sim(square_array(4));
  const Tensor a = random_tensor(Shape{13, 7}, 3);
  const Tensor b = random_tensor(Shape{7, 10}, 4);
  const SimResult result = sim.matmul(a, b);
  EXPECT_EQ(result.folds, 4u * 3);  // ceil(13/4) x ceil(10/4)
  EXPECT_TRUE(allclose(result.output, nn::matmul(a, b), 1e-4F, 1e-5F));
}

TEST(SimMatmul, CyclesMatchAnalyticSingleFold) {
  const ArrayConfig cfg = array_no_overlap(8);
  SystolicArraySim sim(cfg);
  const Tensor a = random_tensor(Shape{8, 5}, 5);
  const Tensor b = random_tensor(Shape{5, 8}, 6);
  const SimResult result = sim.matmul(a, b);
  EXPECT_EQ(result.cycles, matmul_latency(8, 5, 8, cfg).cycles);
}

TEST(SimMatmul, MacOpsMatchAnalytic) {
  const ArrayConfig cfg = array_no_overlap(4);
  SystolicArraySim sim(cfg);
  const Tensor a = random_tensor(Shape{9, 6}, 7);
  const Tensor b = random_tensor(Shape{6, 5}, 8);
  const SimResult result = sim.matmul(a, b);
  EXPECT_EQ(result.mac_ops, matmul_latency(9, 6, 5, cfg).mac_ops);
  EXPECT_EQ(result.mac_ops, 9ULL * 6 * 5);
}

TEST(SimMatmul, InnerDimMismatchThrows) {
  SystolicArraySim sim(square_array(4));
  EXPECT_THROW(sim.matmul(Tensor(Shape{2, 3}), Tensor(Shape{4, 2})),
               util::Error);
}

struct SimCase {
  std::int64_t m, t, n, array;
};

class SimMatmulSweep : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimMatmulSweep, ResultAndCyclesMatch) {
  const SimCase c = GetParam();
  const ArrayConfig cfg = array_no_overlap(c.array);
  SystolicArraySim sim(cfg);
  const Tensor a = random_tensor(Shape{c.m, c.t}, 100 + c.m);
  const Tensor b = random_tensor(Shape{c.t, c.n}, 200 + c.n);
  const SimResult result = sim.matmul(a, b);
  EXPECT_TRUE(allclose(result.output, nn::matmul(a, b), 1e-3F, 1e-4F));
  const LatencyEstimate analytic = matmul_latency(c.m, c.t, c.n, cfg);
  EXPECT_EQ(result.cycles, analytic.cycles);
  EXPECT_EQ(result.folds, analytic.folds);
  EXPECT_EQ(result.mac_ops, analytic.mac_ops);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimMatmulSweep,
    ::testing::Values(SimCase{1, 1, 1, 4}, SimCase{4, 4, 4, 4},
                      SimCase{5, 3, 9, 4}, SimCase{16, 2, 16, 8},
                      SimCase{7, 11, 13, 8}, SimCase{3, 20, 2, 2},
                      SimCase{12, 1, 12, 8}, SimCase{9, 9, 9, 3}));

// --- broadcast 1-D convolution ----------------------------------------------

/// Reference: valid 1-D convolution of each line with its kernel.
Tensor conv1d_reference(const Tensor& lines, const Tensor& kernels) {
  const std::int64_t num_lines = lines.shape().dim(0);
  const std::int64_t width = lines.shape().dim(1);
  const std::int64_t taps = kernels.shape().dim(1);
  Tensor out(Shape{num_lines, width - taps + 1});
  for (std::int64_t l = 0; l < num_lines; ++l) {
    for (std::int64_t o = 0; o < width - taps + 1; ++o) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < taps; ++k) {
        acc += static_cast<double>(kernels.at(l, k)) *
               static_cast<double>(lines.at(l, o + k));
      }
      out.at(l, o) = static_cast<float>(acc);
    }
  }
  return out;
}

TEST(SimConv1d, HandComputedTwoTaps) {
  SystolicArraySim sim(square_array(4));
  const Tensor lines(Shape{1, 4}, {1, 2, 3, 4});
  const Tensor kernels(Shape{1, 2}, {1, 10});
  const SimResult result = sim.conv1d_broadcast(lines, kernels);
  // out[o] = x[o] + 10*x[o+1]
  EXPECT_EQ(result.output.shape(), (Shape{1, 3}));
  EXPECT_EQ(result.output.at(0, 0), 21.0F);
  EXPECT_EQ(result.output.at(0, 1), 32.0F);
  EXPECT_EQ(result.output.at(0, 2), 43.0F);
}

TEST(SimConv1d, PerLineKernelsAreIndependent) {
  SystolicArraySim sim(square_array(4));
  const Tensor lines(Shape{2, 3}, {1, 1, 1, 2, 2, 2});
  const Tensor kernels(Shape{2, 2}, {1, 0, 0, 1});
  const SimResult result = sim.conv1d_broadcast(lines, kernels);
  EXPECT_EQ(result.output.at(0, 0), 1.0F);
  EXPECT_EQ(result.output.at(1, 0), 2.0F);
}

TEST(SimConv1d, MatchesReferenceAcrossFolds) {
  SystolicArraySim sim(square_array(4));
  const Tensor lines = random_tensor(Shape{10, 11}, 9);
  const Tensor kernels = random_tensor(Shape{10, 3}, 10);
  const SimResult result = sim.conv1d_broadcast(lines, kernels);
  EXPECT_TRUE(allclose(result.output, conv1d_reference(lines, kernels),
                       1e-4F, 1e-5F));
  // lines fold: ceil(10/4)=3; output fold: ceil(9/4)=3.
  EXPECT_EQ(result.folds, 9u);
}

TEST(SimConv1d, CyclesMatchAnalytic) {
  const ArrayConfig cfg = array_no_overlap(4);
  SystolicArraySim sim(cfg);
  const Tensor lines = random_tensor(Shape{10, 11}, 11);
  const Tensor kernels = random_tensor(Shape{10, 3}, 12);
  const SimResult result = sim.conv1d_broadcast(lines, kernels);
  const LatencyEstimate analytic = fuse1d_latency(10, 9, 3, cfg);
  EXPECT_EQ(result.cycles, analytic.cycles);
  EXPECT_EQ(result.mac_ops, analytic.mac_ops);
}

TEST(SimConv1d, RequiresBroadcastLinks) {
  SystolicArraySim sim(square_array(4, /*broadcast=*/false));
  EXPECT_THROW(
      sim.conv1d_broadcast(Tensor(Shape{1, 4}), Tensor(Shape{1, 2})),
      util::Error);
}

TEST(SimConv1d, LineShorterThanKernelThrows) {
  SystolicArraySim sim(square_array(4));
  EXPECT_THROW(
      sim.conv1d_broadcast(Tensor(Shape{1, 2}), Tensor(Shape{1, 3})),
      util::Error);
}

class SimConv1dSweep : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimConv1dSweep, ResultAndCyclesMatch) {
  const SimCase c = GetParam();  // m=lines, t=width, n=taps
  const ArrayConfig cfg = array_no_overlap(c.array);
  SystolicArraySim sim(cfg);
  const Tensor lines = random_tensor(Shape{c.m, c.t}, 300 + c.m);
  const Tensor kernels = random_tensor(Shape{c.m, c.n}, 400 + c.n);
  const SimResult result = sim.conv1d_broadcast(lines, kernels);
  EXPECT_TRUE(allclose(result.output, conv1d_reference(lines, kernels),
                       1e-3F, 1e-4F));
  const LatencyEstimate analytic =
      fuse1d_latency(c.m, c.t - c.n + 1, c.n, cfg);
  EXPECT_EQ(result.cycles, analytic.cycles);
  EXPECT_EQ(result.folds, analytic.folds);
  EXPECT_EQ(result.mac_ops, analytic.mac_ops);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimConv1dSweep,
    ::testing::Values(SimCase{1, 3, 3, 4},   // single line, single output
                      SimCase{4, 8, 3, 4},   // exact fit
                      SimCase{5, 9, 2, 4},   // ragged folds
                      SimCase{16, 12, 5, 8}, // K=5 (MobileNet-V3 blocks)
                      SimCase{3, 30, 3, 8},  // long lines
                      SimCase{20, 6, 3, 16}  // more lines than rows... wide
                      ));

// --- dataflow comparison ----------------------------------------------------

TEST(DataflowComparison, BroadcastBeatsSingleColumnOnSameWork) {
  // Run the same 1-D convolutions both ways and compare measured cycles:
  // the proposed dataflow is the win the whole paper is about.
  const ArrayConfig cfg = array_no_overlap(16);
  SystolicArraySim sim(cfg);
  const Tensor lines = random_tensor(Shape{32, 18}, 13);
  const Tensor kernels = random_tensor(Shape{32, 3}, 14);
  const SimResult broadcast = sim.conv1d_broadcast(lines, kernels);

  // Single-column fallback: each line is a [16, 3] x [3, 1] matmul.
  std::uint64_t fallback_cycles = 0;
  for (std::int64_t l = 0; l < 32; ++l) {
    Tensor patches(Shape{16, 3});
    for (std::int64_t o = 0; o < 16; ++o) {
      for (std::int64_t k = 0; k < 3; ++k) {
        patches.at(o, k) = lines.at(l, o + k);
      }
    }
    Tensor filter(Shape{3, 1});
    for (std::int64_t k = 0; k < 3; ++k) {
      filter.at(k, 0) = kernels.at(l, k);
    }
    const SimResult one = sim.matmul(patches, filter);
    fallback_cycles += one.cycles;
    // Same numeric answer either way.
    for (std::int64_t o = 0; o < 16; ++o) {
      EXPECT_NEAR(one.output.at(o, 0), broadcast.output.at(l, o), 1e-4F);
    }
  }
  EXPECT_EQ(fallback_cycles,
            fuse1d_no_broadcast_latency(32, 16, 3, cfg).cycles);
  EXPECT_GT(fallback_cycles, 5 * broadcast.cycles);
}

}  // namespace
}  // namespace fuse::systolic

// NOTE: appended suite — fast-vs-reference engine bit-exactness (the
// contract documented in docs/simulator.md). Everything here compares with
// memcmp, not allclose: the fast engine must reproduce the per-cycle
// sweep's results to the last bit, for every dataflow, the broadcast path,
// strided plans, ragged fold shapes, and any thread count.
#include <cstring>
#include <tuple>

#include "nn/layer.hpp"
#include "systolic/mapping.hpp"

namespace fuse::systolic {
namespace {

using tensor::Shape;
using tensor::Tensor;

::testing::AssertionResult bits_equal(const Tensor& actual,
                                      const Tensor& expected) {
  if (!(actual.shape() == expected.shape())) {
    return ::testing::AssertionFailure()
           << "shape " << actual.shape().to_string() << " vs "
           << expected.shape().to_string();
  }
  if (std::memcmp(actual.data(), expected.data(),
                  static_cast<std::size_t>(actual.num_elements()) *
                      sizeof(float)) != 0) {
    return ::testing::AssertionFailure() << "tensor bits differ";
  }
  return ::testing::AssertionSuccess();
}

void expect_bit_exact(const SimResult& fast, const SimResult& reference) {
  EXPECT_EQ(fast.cycles, reference.cycles);
  EXPECT_EQ(fast.folds, reference.folds);
  EXPECT_EQ(fast.mac_ops, reference.mac_ops);
  EXPECT_TRUE(bits_equal(fast.output, reference.output));
  EXPECT_TRUE(bits_equal(fast.pe_busy, reference.pe_busy));
}

/// Restores the process-wide backend/thread state on scope exit so these
/// tests cannot leak configuration into the rest of the binary.
struct ScopedSimState {
  SimBackend backend = sim_backend();
  int threads = sim_threads();
  ~ScopedSimState() {
    set_sim_backend(backend);
    set_sim_threads(threads);
  }
};

Tensor seeded_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

/// Sprinkles exact zeros (and keeps negatives) so the +-0.0 corners of the
/// bubble analysis in sim_fast.cpp actually get exercised.
Tensor zero_heavy_tensor(Shape shape, std::uint64_t seed) {
  Tensor t = seeded_tensor(std::move(shape), seed);
  for (std::int64_t i = 0; i < t.num_elements(); i += 3) {
    t[i] = 0.0F;
  }
  for (std::int64_t i = 1; i < t.num_elements(); i += 7) {
    t[i] = -0.0F;
  }
  return t;
}

SimResult run_pinned(SystolicArraySim& sim, Dataflow df, const Tensor& a,
                     const Tensor& b, bool fast) {
  switch (df) {
    case Dataflow::kOutputStationary:
      return fast ? sim.matmul_os_fast(a, b) : sim.matmul_os_reference(a, b);
    case Dataflow::kWeightStationary:
      return fast ? sim.matmul_ws_fast(a, b) : sim.matmul_ws_reference(a, b);
    case Dataflow::kInputStationary:
      return fast ? sim.matmul_is_fast(a, b) : sim.matmul_is_reference(a, b);
  }
  FUSE_CHECK(false) << "unknown dataflow";
  return {};
}

TEST(SimBackendApi, ParseAndName) {
  SimBackend backend = SimBackend::kReference;
  EXPECT_TRUE(parse_sim_backend("fast", &backend));
  EXPECT_EQ(backend, SimBackend::kFast);
  EXPECT_TRUE(parse_sim_backend("reference", &backend));
  EXPECT_EQ(backend, SimBackend::kReference);
  EXPECT_TRUE(parse_sim_backend("ref", &backend));
  EXPECT_EQ(backend, SimBackend::kReference);
  EXPECT_FALSE(parse_sim_backend("turbo", &backend));
  EXPECT_FALSE(parse_sim_backend("", &backend));
  EXPECT_STREQ(sim_backend_name(SimBackend::kFast), "fast");
  EXPECT_STREQ(sim_backend_name(SimBackend::kReference), "reference");
}

TEST(SimBackendApi, DispatchRoutesToSelectedEngine) {
  ScopedSimState guard;
  SystolicArraySim sim(square_array(4));
  const Tensor a = seeded_tensor(Shape{5, 3}, 71);
  const Tensor b = seeded_tensor(Shape{3, 6}, 72);
  set_sim_backend(SimBackend::kReference);
  const SimResult via_reference = sim.matmul(a, b);
  set_sim_backend(SimBackend::kFast);
  const SimResult via_fast = sim.matmul(a, b);
  expect_bit_exact(via_fast, via_reference);
}

TEST(SimBackendApi, ThreadCountIsValidated) {
  EXPECT_THROW(set_sim_threads(0), util::Error);
  EXPECT_THROW(set_sim_threads(-2), util::Error);
}

// Differential grid: dataflow x ragged fold shapes (array sizes that do
// NOT divide m/t/n, so edge tiles and multi-fold reduction are hit) on
// square and rectangular grids.
struct DiffCase {
  std::int64_t m, t, n, rows, cols;
};

class SimBackendDiff
    : public ::testing::TestWithParam<std::tuple<Dataflow, DiffCase>> {};

TEST_P(SimBackendDiff, FastMatchesReferenceBitExactly) {
  const auto [df, c] = GetParam();
  ArrayConfig cfg;
  cfg.rows = c.rows;
  cfg.cols = c.cols;
  cfg.dataflow = df;
  SystolicArraySim sim(cfg);
  const Tensor a = seeded_tensor(Shape{c.m, c.t}, 500 + c.m);
  const Tensor b = seeded_tensor(Shape{c.t, c.n}, 600 + c.n);
  expect_bit_exact(run_pinned(sim, df, a, b, /*fast=*/true),
                   run_pinned(sim, df, a, b, /*fast=*/false));
  const Tensor az = zero_heavy_tensor(Shape{c.m, c.t}, 700 + c.m);
  const Tensor bz = zero_heavy_tensor(Shape{c.t, c.n}, 800 + c.n);
  expect_bit_exact(run_pinned(sim, df, az, bz, /*fast=*/true),
                   run_pinned(sim, df, az, bz, /*fast=*/false));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimBackendDiff,
    ::testing::Combine(
        ::testing::Values(Dataflow::kOutputStationary,
                          Dataflow::kWeightStationary,
                          Dataflow::kInputStationary),
        ::testing::Values(DiffCase{1, 1, 1, 4, 4},    // degenerate
                          DiffCase{4, 4, 4, 4, 4},    // exact fit
                          DiffCase{13, 7, 10, 4, 4},  // ragged folds
                          DiffCase{5, 17, 3, 4, 4},   // deep reduction
                          DiffCase{11, 6, 13, 3, 9},  // rectangular
                          DiffCase{11, 6, 13, 9, 3},  // rectangular, tall
                          DiffCase{9, 9, 9, 8, 8})));

class SimBackendConvDiff : public ::testing::TestWithParam<DiffCase> {};

TEST_P(SimBackendConvDiff, FastMatchesReferenceBitExactly) {
  const DiffCase c = GetParam();  // m=lines, t=width, n=taps
  ArrayConfig cfg;
  cfg.rows = c.rows;
  cfg.cols = c.cols;
  SystolicArraySim sim(cfg);
  const Tensor lines = zero_heavy_tensor(Shape{c.m, c.t}, 900 + c.m);
  const Tensor kernels = zero_heavy_tensor(Shape{c.m, c.n}, 950 + c.n);
  expect_bit_exact(sim.conv1d_broadcast_fast(lines, kernels),
                   sim.conv1d_broadcast_reference(lines, kernels));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimBackendConvDiff,
    ::testing::Values(DiffCase{1, 3, 3, 4, 4},    // single line/output
                      DiffCase{10, 11, 3, 4, 4},  // ragged folds
                      DiffCase{16, 12, 5, 8, 8},  // K=5
                      DiffCase{7, 9, 3, 3, 9},    // rectangular
                      DiffCase{20, 30, 3, 9, 3}));

// Strided layers exercise the fast path through whole lowered plans (the
// FuSe dense-compute-then-discard stride handling included). run_plan
// discards the numeric output, so this compares counters and pe_busy.
TEST(SimBackendDiffPlans, StridedPlansMatchAcrossBackends) {
  ScopedSimState guard;
  const nn::LayerDesc layers[] = {
      nn::make_fuse_row("fuse_s2", 8, 14, 14, 3, /*stride=*/2, 1),
      nn::make_fuse_col("fuse_col_s2", 8, 14, 14, 3, /*stride=*/2, 1),
      nn::make_depthwise("dw_s2", 8, 14, 14, 3, /*stride=*/2, 1),
      nn::make_conv("conv_s2", 3, 14, 14, 8, 3, /*stride=*/2, 1),
  };
  for (const nn::LayerDesc& layer : layers) {
    for (const bool broadcast : {true, false}) {
      ArrayConfig cfg = square_array(8, broadcast);
      SystolicArraySim sim(cfg);
      const MappingPlan plan = lower(layer, cfg);
      set_sim_backend(SimBackend::kReference);
      const SimResult reference = sim.run_plan(plan);
      set_sim_backend(SimBackend::kFast);
      const SimResult fast = sim.run_plan(plan);
      EXPECT_EQ(fast.cycles, reference.cycles) << layer.name;
      EXPECT_EQ(fast.folds, reference.folds) << layer.name;
      EXPECT_EQ(fast.mac_ops, reference.mac_ops) << layer.name;
      EXPECT_TRUE(bits_equal(fast.pe_busy, reference.pe_busy)) << layer.name;
    }
  }
}

// The fold-parallel reduction must be deterministic: any thread count
// produces the identical bits, and they all equal the reference.
TEST(SimBackendThreads, ResultsIdenticalAcrossThreadCounts) {
  ScopedSimState guard;
  for (const Dataflow df :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
        Dataflow::kInputStationary}) {
    ArrayConfig cfg = square_array(4);
    cfg.dataflow = df;
    SystolicArraySim sim(cfg);
    const Tensor a = zero_heavy_tensor(Shape{13, 9}, 42);
    const Tensor b = zero_heavy_tensor(Shape{9, 11}, 43);
    const SimResult reference = run_pinned(sim, df, a, b, /*fast=*/false);
    for (const int threads : {1, 2, 4}) {
      set_sim_threads(threads);
      expect_bit_exact(run_pinned(sim, df, a, b, /*fast=*/true), reference);
    }
  }
}

TEST(SimBackendThreads, Conv1dIdenticalAcrossThreadCounts) {
  ScopedSimState guard;
  SystolicArraySim sim(square_array(4));
  const Tensor lines = zero_heavy_tensor(Shape{10, 19}, 44);
  const Tensor kernels = zero_heavy_tensor(Shape{10, 3}, 45);
  const SimResult reference = sim.conv1d_broadcast_reference(lines, kernels);
  for (const int threads : {1, 2, 4}) {
    set_sim_threads(threads);
    expect_bit_exact(sim.conv1d_broadcast_fast(lines, kernels), reference);
  }
}

}  // namespace
}  // namespace fuse::systolic

// NOTE: appended suite — cycle-level WS/IS dataflow simulation.
namespace fuse::systolic {
namespace {

ArrayConfig df_array(Dataflow df, std::int64_t size) {
  ArrayConfig cfg = square_array(size);
  cfg.dataflow = df;
  cfg.overlap_fold_drain = false;
  return cfg;
}

TEST(SimWeightStationary, HandComputed2x2) {
  SystolicArraySim sim(df_array(Dataflow::kWeightStationary, 4));
  const Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor b(Shape{2, 2}, {5, 6, 7, 8});
  const SimResult result = sim.matmul(a, b);
  EXPECT_EQ(result.output.at(0, 0), 19.0F);
  EXPECT_EQ(result.output.at(1, 1), 50.0F);
}

TEST(SimWeightStationary, AccumulatesAcrossReductionFolds) {
  // depth 9 on a 4-row array: 3 reduction folds must sum correctly.
  SystolicArraySim sim(df_array(Dataflow::kWeightStationary, 4));
  const Tensor a = [] {
    util::Rng rng(31);
    Tensor t(Shape{5, 9});
    t.fill_uniform(rng, -1.0F, 1.0F);
    return t;
  }();
  const Tensor b = [] {
    util::Rng rng(32);
    Tensor t(Shape{9, 6});
    t.fill_uniform(rng, -1.0F, 1.0F);
    return t;
  }();
  const SimResult result = sim.matmul(a, b);
  EXPECT_TRUE(allclose(result.output, nn::matmul(a, b), 1e-4F, 1e-5F));
  EXPECT_EQ(result.folds, 3u * 2);
}

TEST(SimInputStationary, HandComputed2x2) {
  SystolicArraySim sim(df_array(Dataflow::kInputStationary, 4));
  const Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor b(Shape{2, 2}, {5, 6, 7, 8});
  const SimResult result = sim.matmul(a, b);
  EXPECT_EQ(result.output.at(0, 0), 19.0F);
  EXPECT_EQ(result.output.at(1, 0), 43.0F);
}

class SimDataflowSweep : public ::testing::TestWithParam<
                             std::tuple<Dataflow, int, int, int, int>> {};

TEST_P(SimDataflowSweep, ResultAndCyclesMatchAnalytic) {
  const auto [df, m, t, n, size] = GetParam();
  const ArrayConfig cfg = df_array(df, size);
  SystolicArraySim sim(cfg);
  util::Rng rng(static_cast<std::uint64_t>(m * 100 + t * 10 + n));
  Tensor a(Shape{m, t});
  a.fill_uniform(rng, -1.0F, 1.0F);
  Tensor b(Shape{t, n});
  b.fill_uniform(rng, -1.0F, 1.0F);
  const SimResult result = sim.matmul(a, b);
  EXPECT_TRUE(allclose(result.output, nn::matmul(a, b), 1e-3F, 1e-4F));
  const LatencyEstimate analytic = matmul_latency(m, t, n, cfg);
  EXPECT_EQ(result.cycles, analytic.cycles);
  EXPECT_EQ(result.folds, analytic.folds);
  EXPECT_EQ(result.mac_ops, analytic.mac_ops);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimDataflowSweep,
    ::testing::Combine(
        ::testing::Values(Dataflow::kWeightStationary,
                          Dataflow::kInputStationary),
        ::testing::Values(1, 5, 9),    // M
        ::testing::Values(3, 8, 13),   // T
        ::testing::Values(1, 4, 10),   // N
        ::testing::Values(4, 8)));     // array


// --- PE activity heatmaps -------------------------------------------------------

TEST(PeBusy, SumsEqualMacOps) {
  SystolicArraySim sim(square_array(8));
  const Tensor a = random_tensor(Shape{13, 7}, 41);
  const Tensor b = random_tensor(Shape{7, 10}, 42);
  const SimResult r = sim.matmul(a, b);
  EXPECT_EQ(static_cast<std::uint64_t>(r.pe_busy.sum() + 0.5), r.mac_ops);
}

TEST(PeBusy, SingleColumnMatmulLightsOneColumn) {
  // The depthwise pathology, at PE granularity.
  SystolicArraySim sim(square_array(8));
  const Tensor a = random_tensor(Shape{8, 9}, 43);
  const Tensor b = random_tensor(Shape{9, 1}, 44);
  const SimResult r = sim.matmul(a, b);
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_GT(r.pe_busy.at(i, 0), 0.0F);
    for (std::int64_t j = 1; j < 8; ++j) {
      EXPECT_EQ(r.pe_busy.at(i, j), 0.0F);
    }
  }
}

TEST(PeBusy, BroadcastConvFillsTheGrid) {
  SystolicArraySim sim(square_array(8));
  const Tensor lines = random_tensor(Shape{8, 10}, 45);
  const Tensor kernels = random_tensor(Shape{8, 3}, 46);
  const SimResult r = sim.conv1d_broadcast(lines, kernels);
  for (std::int64_t i = 0; i < 8; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) {
      EXPECT_GT(r.pe_busy.at(i, j), 0.0F) << i << "," << j;
    }
  }
  EXPECT_EQ(static_cast<std::uint64_t>(r.pe_busy.sum() + 0.5), r.mac_ops);
}

TEST(PeBusy, WeightStationaryTracksToo) {
  SystolicArraySim sim(df_array(Dataflow::kWeightStationary, 4));
  const Tensor a = random_tensor(Shape{6, 4}, 47);
  const Tensor b = random_tensor(Shape{4, 4}, 48);
  const SimResult r = sim.matmul(a, b);
  EXPECT_EQ(static_cast<std::uint64_t>(r.pe_busy.sum() + 0.5), r.mac_ops);
}

TEST(Heatmap, RendersIdleAndScaledCells) {
  Tensor busy(Shape{2, 3});
  busy.at(0, 0) = 9.0F;
  busy.at(1, 2) = 1.0F;
  const std::string map = render_pe_heatmap(busy);
  EXPECT_EQ(map, "9..\n..1\n");
}

TEST(Heatmap, AllIdleRendersDots) {
  const std::string map = render_pe_heatmap(Tensor(Shape{1, 4}));
  EXPECT_EQ(map, "....\n");
}

TEST(Heatmap, WrongRankThrows) {
  EXPECT_THROW(render_pe_heatmap(Tensor(Shape{4})), util::Error);
}


TEST(RectangularArrays, SimMatchesAnalyticOnNonSquareGrids) {
  for (const auto [rows, cols] : {std::pair<std::int64_t, std::int64_t>{3, 9},
                                  {9, 3},
                                  {2, 16}}) {
    ArrayConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.overlap_fold_drain = false;
    SystolicArraySim sim(cfg);
    const Tensor a = random_tensor(Shape{11, 6}, 61);
    const Tensor b = random_tensor(Shape{6, 13}, 62);
    const SimResult r = sim.matmul(a, b);
    EXPECT_TRUE(allclose(r.output, nn::matmul(a, b), 1e-3F, 1e-4F))
        << rows << "x" << cols;
    EXPECT_EQ(r.cycles, matmul_latency(11, 6, 13, cfg).cycles)
        << rows << "x" << cols;
    const Tensor lines = random_tensor(Shape{7, 9}, 63);
    const Tensor kernels = random_tensor(Shape{7, 3}, 64);
    const SimResult c = sim.conv1d_broadcast(lines, kernels);
    EXPECT_EQ(c.cycles, fuse1d_latency(7, 7, 3, cfg).cycles)
        << rows << "x" << cols;
  }
}

}  // namespace
}  // namespace fuse::systolic
