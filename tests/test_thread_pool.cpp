// util::ThreadPool contract: clean start/join, every task runs exactly
// once, exceptions cross back to the caller, the zero-thread pool degrades
// to inline serial execution, and nested parallel loops make progress.
// These are the invariants the SweepEngine's determinism guarantee stands
// on; tools/check.sh additionally runs this suite under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fuse::util {
namespace {

TEST(ThreadPool, StartsAndJoinsCleanly) {
  for (int threads : {0, 1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }  // destructor joins; nothing to assert beyond "no hang, no crash"
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, NegativeThreadCountThrows) {
  EXPECT_THROW(ThreadPool(-1), Error);
}

TEST(ThreadPool, SubmitRunsEveryTaskExactlyOnce) {
  constexpr int kTasks = 200;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> runs(kTasks);
  std::atomic<int> completed{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&runs, &completed, i] {
      runs[static_cast<std::size_t>(i)].fetch_add(1);
      completed.fetch_add(1);
    });
  }
  while (completed.load() < kTasks) {
    std::this_thread::yield();
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  constexpr int kTasks = 100;
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&completed] { completed.fetch_add(1); });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(completed.load(), kTasks);
}

TEST(ThreadPool, SubmittingEmptyTaskThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(ThreadPool::Task{}), Error);
}

TEST(ThreadPool, ParallelForRunsEveryIterationExactlyOnce) {
  for (int threads : {0, 1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr std::int64_t kN = 500;
    std::vector<std::atomic<int>> runs(kN);
    pool.parallel_for(kN, [&runs](std::int64_t i) {
      runs[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPool, ParallelForHonorsGrainAndRaggedTail) {
  ThreadPool pool(3);
  constexpr std::int64_t kN = 101;  // not a multiple of the grain
  std::vector<std::atomic<int>> runs(kN);
  pool.parallel_for(
      kN,
      [&runs](std::int64_t i) {
        runs[static_cast<std::size_t>(i)].fetch_add(1);
      },
      /*grain=*/7);
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForZeroIterationsIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&ran](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForRejectsBadArguments) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(-1, [](std::int64_t) {}), Error);
  EXPECT_THROW(pool.parallel_for(4, [](std::int64_t) {}, /*grain=*/0),
               Error);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  for (int threads : {0, 2, 8}) {
    ThreadPool pool(threads);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&completed](std::int64_t i) {
                            if (i == 13) {
                              throw Error("iteration 13 failed");
                            }
                            completed.fetch_add(1);
                          }),
        Error)
        << "threads=" << threads;
    // The remaining iterations still ran (pure sweep tasks: no cancel).
    EXPECT_EQ(completed.load(), 63) << "threads=" << threads;
  }
}

TEST(ThreadPool, ExceptionMessageIsTheFirstFailure) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(32, [](std::int64_t i) {
      if (i % 8 == 0) {
        FUSE_CHECK(false) << "bad index " << i;
      }
    });
    FAIL() << "expected the loop to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad index"), std::string::npos);
  }
}

TEST(ThreadPool, ZeroThreadPoolRunsInlineOnTheCallingThread) {
  ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  bool submitted_inline = false;
  pool.submit([&] { submitted_inline = std::this_thread::get_id() == caller; });
  EXPECT_TRUE(submitted_inline);  // submit already returned => already ran

  std::vector<std::thread::id> ids(17);
  std::vector<std::int64_t> order;
  pool.parallel_for(17, [&](std::int64_t i) {
    ids[static_cast<std::size_t>(i)] = std::this_thread::get_id();
    order.push_back(i);  // safe: inline mode is single-threaded
  });
  for (const std::thread::id& id : ids) {
    EXPECT_EQ(id, caller);
  }
  // Inline mode preserves ascending iteration order exactly.
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<std::int64_t>(i));
  }
}

TEST(ThreadPool, NestedParallelForMakesProgress) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(6, [&](std::int64_t) {
    pool.parallel_for(8, [&](std::int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 48);
}

TEST(ThreadPool, NestedSamePoolLoopRunsInlineOnTheNestingThread) {
  // A parallel_for issued from inside one of this pool's chunks must not
  // re-submit helper chunks: it runs on the nesting thread, in ascending
  // order. This is what makes the serving engine's batch payloads free to
  // call parallel_for without deadlock risk (every worker could otherwise
  // be parked inside an outer chunk waiting on helpers no one claims).
  ThreadPool pool(4);
  std::atomic<int> out_of_thread{0};
  std::atomic<int> out_of_order{0};
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::int64_t) {
    const std::thread::id outer = std::this_thread::get_id();
    std::int64_t last = -1;
    pool.parallel_for(16, [&](std::int64_t j) {
      if (std::this_thread::get_id() != outer) {
        out_of_thread.fetch_add(1);
      }
      if (j != last + 1) {
        out_of_order.fetch_add(1);
      }
      last = j;
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 8 * 16);
  EXPECT_EQ(out_of_thread.load(), 0);
  EXPECT_EQ(out_of_order.load(), 0);
}

TEST(ThreadPool, OnWorkerThreadTracksPoolIdentity) {
  ThreadPool pool(2);
  ThreadPool other(2);
  EXPECT_FALSE(pool.on_worker_thread());  // plain caller: no pool work
  std::atomic<int> inside_pool{0};
  std::atomic<int> inside_other{0};
  pool.parallel_for(16, [&](std::int64_t) {
    if (pool.on_worker_thread()) {
      inside_pool.fetch_add(1);
    }
    if (other.on_worker_thread()) {
      inside_other.fetch_add(1);
    }
  });
  EXPECT_EQ(inside_pool.load(), 16);   // every chunk body is marked
  EXPECT_EQ(inside_other.load(), 0);   // ... but only for its own pool
  EXPECT_FALSE(pool.on_worker_thread());  // scope unwinds with the loop
}

TEST(ThreadPool, NestedLoopOnADifferentPoolStillFansOut) {
  // The inline-nesting guard is per pool identity: a loop on POOL B from
  // inside POOL A's chunk distributes normally (this is the sweep pool /
  // serve pool layering). Assert B's workers actually participate.
  ThreadPool outer(2);
  ThreadPool inner(3);
  std::atomic<int> on_inner_worker{0};
  std::atomic<int> total{0};
  outer.parallel_for(2, [&](std::int64_t) {
    inner.parallel_for(64, [&](std::int64_t) {
      if (inner.on_worker_thread()) {
        on_inner_worker.fetch_add(1);
      }
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 2 * 64);
  EXPECT_EQ(on_inner_worker.load(), 2 * 64);
}

TEST(ThreadPool, SubmittedTaskIsMarkedAsPoolWork) {
  // submit() tasks run under the same worker marking as parallel_for
  // chunks, so a nested loop from a submitted task is inline too.
  ThreadPool pool(2);
  std::atomic<bool> marked{false};
  std::atomic<bool> done{false};
  pool.submit([&] {
    marked.store(pool.on_worker_thread());
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(marked.load());
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(8);
  constexpr std::int64_t kN = 20000;
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(kN, [&sum](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPool, ParallelForUsesMultipleThreadsWhenAvailable) {
  // With workers present and enough blocking iterations, at least two
  // distinct threads participate. Each iteration waits until every other
  // one has started, so a serial execution would deadlock rather than
  // pass; the generous watchdog below keeps the suite safe regardless.
  ThreadPool pool(3);
  if (ThreadPool::hardware_threads() < 2) {
    GTEST_SKIP() << "single-core machine: concurrency not observable";
  }
  constexpr std::int64_t kN = 4;
  std::atomic<int> started{0};
  std::atomic<bool> timed_out{false};
  std::vector<std::thread::id> ids(kN);
  pool.parallel_for(kN, [&](std::int64_t i) {
    ids[static_cast<std::size_t>(i)] = std::this_thread::get_id();
    started.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (started.load() < kN &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    if (started.load() < kN) {
      timed_out.store(true);
    }
  });
  ASSERT_FALSE(timed_out.load());
  bool distinct = false;
  for (std::int64_t i = 1; i < kN; ++i) {
    distinct = distinct || ids[static_cast<std::size_t>(i)] != ids[0];
  }
  EXPECT_TRUE(distinct);
}

}  // namespace
}  // namespace fuse::util
