// Tests for the plan-free closed-form evaluator (sched/eval_fast.hpp):
// the oracle-vs-fast equality contract over the complete differential
// grid (networks x variants x dataflows x broadcast x sched modes), the
// transparency/datapath axes, the EvalCache memoization contract, and the
// LatencyKey no-alias guarantees for the new ArrayConfig fields.
#include <gtest/gtest.h>

#include "core/transform.hpp"
#include "nn/ops.hpp"
#include "sched/eval_fast.hpp"
#include "sched/latency.hpp"
#include "sched/netplan.hpp"
#include "systolic/mapping.hpp"
#include "systolic/sim.hpp"
#include "systolic/trace.hpp"

namespace fuse::sched {
namespace {

using nn::LayerDesc;
using systolic::ArrayConfig;
using systolic::Dataflow;
using systolic::Datapath;
using systolic::MemoryConfig;
using systolic::Pipelining;

// --- equality helpers --------------------------------------------------------

void expect_layer_equal(const LayerDesc& layer, const ArrayConfig& cfg,
                        const MemoryConfig& mem) {
  SCOPED_TRACE(layer.name + " on " + cfg.to_string() + " " +
               dataflow_name(cfg.dataflow));
  const systolic::MappingPlan plan = systolic::lower(layer, cfg);
  const systolic::LatencyEstimate oracle = plan_latency(plan);
  const systolic::TrafficEstimate traffic =
      systolic::plan_traffic(plan, cfg, mem);
  const std::uint64_t peak = systolic::plan_peak_fold_bytes(plan, cfg, mem);

  const LayerCost fast = eval_layer_fast(layer, cfg, mem);
  EXPECT_EQ(fast.latency.cycles, oracle.cycles);
  EXPECT_EQ(fast.latency.folds, oracle.folds);
  EXPECT_EQ(fast.latency.mac_ops, oracle.mac_ops);
  EXPECT_EQ(fast.latency.pe_count, oracle.pe_count);
  EXPECT_EQ(fast.traffic.input_bytes, traffic.input_bytes);
  EXPECT_EQ(fast.traffic.weight_bytes, traffic.weight_bytes);
  EXPECT_EQ(fast.traffic.output_bytes, traffic.output_bytes);
  EXPECT_EQ(fast.peak_fold_bytes, peak);
  EXPECT_EQ(fast.on_array, !plan.ops.empty());
}

void expect_network_equal(const nets::NetworkModel& model,
                          const ArrayConfig& cfg, const MemoryConfig& mem,
                          SchedMode mode) {
  SCOPED_TRACE(model.name + " on " + cfg.to_string() + " " +
               dataflow_name(cfg.dataflow) + " " + sched_mode_name(mode));
  const NetworkPlan plan = plan_network(model, cfg, mem, mode);
  const NetworkRoofline oracle = plan_roofline(plan);
  const NetworkEval ev = eval_network_fast(model, cfg, mem, mode);

  ASSERT_EQ(ev.layers.size(), model.layers.size());
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    EXPECT_EQ(ev.layers[i].latency.cycles, plan.layer_latency[i].cycles);
    EXPECT_EQ(ev.layers[i].traffic.total_bytes(),
              plan.layer_traffic[i].total_bytes());
  }
  EXPECT_EQ(ev.total_cycles, plan.total_cycles);
  EXPECT_EQ(ev.schedule.on_array, plan.on_array);
  EXPECT_EQ(ev.schedule.staging_bytes, plan.staging_bytes);
  ASSERT_EQ(ev.schedule.buffers.size(), plan.buffers.size());
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    EXPECT_EQ(ev.schedule.buffers[i].producer, plan.buffers[i].producer);
    EXPECT_EQ(ev.schedule.buffers[i].bytes, plan.buffers[i].bytes);
    EXPECT_EQ(ev.schedule.buffers[i].offset, plan.buffers[i].offset);
    EXPECT_EQ(ev.schedule.buffers[i].spilled, plan.buffers[i].spilled);
  }
  ASSERT_EQ(ev.schedule.fused_pairs.size(), plan.fused_pairs.size());
  for (std::size_t i = 0; i < plan.fused_pairs.size(); ++i) {
    EXPECT_EQ(ev.schedule.fused_pairs[i].producer,
              plan.fused_pairs[i].producer);
    EXPECT_EQ(ev.schedule.fused_pairs[i].producer2,
              plan.fused_pairs[i].producer2);
    EXPECT_EQ(ev.schedule.fused_pairs[i].consumer,
              plan.fused_pairs[i].consumer);
    EXPECT_EQ(ev.schedule.fused_pairs[i].saved_output_bytes,
              plan.fused_pairs[i].saved_output_bytes);
    EXPECT_EQ(ev.schedule.fused_pairs[i].saved_input_bytes,
              plan.fused_pairs[i].saved_input_bytes);
  }
  EXPECT_EQ(ev.roofline.compute_cycles, oracle.compute_cycles);
  EXPECT_EQ(ev.roofline.memory_cycles, oracle.memory_cycles);
  EXPECT_EQ(ev.roofline.bound_cycles, oracle.bound_cycles);
  EXPECT_EQ(ev.roofline.total_bytes, oracle.total_bytes);
  EXPECT_EQ(ev.roofline.memory_bound_layers, oracle.memory_bound_layers);
}

// --- the complete differential grid ------------------------------------------

// 5 networks x 5 variants x 3 dataflows x broadcast on/off x 2 sched
// modes — the acceptance grid of the evaluator's equality contract. The
// 50% variants are rebuilt per config (their slot pick is
// config-dependent); both paths then see the identical model.
TEST(EvalFastGrid, MatchesPlanPathEverywhere) {
  const MemoryConfig mem;
  for (nets::NetworkId id : nets::paper_networks()) {
    for (core::NetworkVariant variant : core::all_network_variants()) {
      for (Dataflow dataflow :
           {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
            Dataflow::kInputStationary}) {
        for (bool broadcast : {false, true}) {
          ArrayConfig cfg;
          cfg.dataflow = dataflow;
          cfg.broadcast_links = broadcast;
          const VariantBuild build = build_variant(id, variant, cfg);
          for (SchedMode mode : {SchedMode::kPerLayer, SchedMode::kFused}) {
            expect_network_equal(build.model, cfg, mem, mode);
          }
        }
      }
    }
  }
}

// Per-layer equality on every layer of every baseline + FuSe-Full network
// under the non-default fold-accounting and conv-mapping switches the
// network grid above does not flip.
TEST(EvalFastGrid, NonDefaultConfigSwitches) {
  const MemoryConfig mem;
  for (nets::NetworkId id : nets::paper_networks()) {
    for (core::NetworkVariant variant :
         {core::NetworkVariant::kBaseline, core::NetworkVariant::kFuseFull}) {
      ArrayConfig cfg;
      const VariantBuild build = build_variant(id, variant, cfg);
      for (bool overlap : {false, true}) {
        for (systolic::StandardConvMapping mapping :
             {systolic::StandardConvMapping::kIm2col,
              systolic::StandardConvMapping::kChannelwise}) {
          ArrayConfig variant_cfg = cfg;
          variant_cfg.overlap_fold_drain = overlap;
          variant_cfg.standard_conv_mapping = mapping;
          variant_cfg.strided_fuse_dense_compute = !overlap;  // vary too
          for (const LayerDesc& layer : build.model.layers) {
            expect_layer_equal(layer, variant_cfg, mem);
          }
        }
      }
    }
  }
}

// The transparency and datapath axes: closed forms must track the
// fold-walk on non-square arrays, every dataflow, and every pipelining
// mode, with the memory dtype paired to the datapath.
TEST(EvalFastGrid, TransparencyAndDatapathAxes) {
  for (Pipelining pipe : {Pipelining::kPipelined, Pipelining::kTransparent2,
                          Pipelining::kTransparent4}) {
    for (Datapath dp : {Datapath::kInt8, Datapath::kFp16, Datapath::kFp32}) {
      for (Dataflow dataflow :
           {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
            Dataflow::kInputStationary}) {
        ArrayConfig cfg;
        cfg.rows = 32;
        cfg.cols = 128;
        cfg.dataflow = dataflow;
        cfg.pipelining = pipe;
        cfg.datapath = dp;
        MemoryConfig mem;
        mem.dtype_bytes = cfg.datapath_bytes();
        const VariantBuild build = build_variant(
            nets::NetworkId::kMobileNetV2, core::NetworkVariant::kFuseFull,
            cfg);
        for (const LayerDesc& layer : build.model.layers) {
          expect_layer_equal(layer, cfg, mem);
        }
        expect_network_equal(build.model, cfg, mem, SchedMode::kFused);
      }
    }
  }
}

// At transparency 1 the generalized skew/drain terms must reduce to the
// legacy (span - 1) / span forms — pinned via the cfg-taking fold_cycles
// overload against the original 3-argument one.
TEST(EvalFast, FoldCyclesPipelinedReducesToLegacy) {
  ArrayConfig cfg;  // pipelined default
  for (std::int64_t r : {1, 3, 64}) {
    for (std::int64_t c : {1, 5, 64}) {
      for (std::int64_t d : {1, 7, 100}) {
        EXPECT_EQ(systolic::fold_cycles(r, c, d, cfg),
                  systolic::fold_cycles(r, c, d));
      }
    }
  }
}

// --- EvalCache ---------------------------------------------------------------

TEST(EvalCache, HitMissAccounting) {
  EvalCache cache;
  const LayerDesc dw = nn::make_depthwise("dw", 32, 28, 28, 3, 1, 1);
  ArrayConfig cfg;
  MemoryConfig mem;
  const LayerCost first = cache.get_or_compute(dw, cfg, mem);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  const LayerCost second = cache.get_or_compute(dw, cfg, mem);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(first.latency.cycles, second.latency.cycles);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate_pct(), 50.0);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

// dtype width is part of the memo key (it scales the byte fields); the
// same shape at a different width must MISS, not alias.
TEST(EvalCache, DtypeBytesKeyed) {
  EvalCache cache;
  const LayerDesc pw = nn::make_pointwise("pw", 32, 14, 14, 64);
  ArrayConfig cfg;
  MemoryConfig fp16;
  MemoryConfig int8 = fp16;
  int8.dtype_bytes = 1;
  const LayerCost wide = cache.get_or_compute(pw, cfg, fp16);
  const LayerCost narrow = cache.get_or_compute(pw, cfg, int8);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(wide.traffic.total_bytes(), 2 * narrow.traffic.total_bytes());
  EXPECT_EQ(wide.latency.cycles, narrow.latency.cycles);
}

// eval_network_fast with a shared cache must return identical values to
// the uncached path.
TEST(EvalCache, CachedNetworkEvalIdentical) {
  ArrayConfig cfg;
  MemoryConfig mem;
  const nets::NetworkModel model =
      nets::build_network(nets::NetworkId::kMobileNetV1);
  EvalCache cache;
  const NetworkEval cold = eval_network_fast(model, cfg, mem,
                                             SchedMode::kFused, &cache);
  const NetworkEval warm = eval_network_fast(model, cfg, mem,
                                             SchedMode::kFused, &cache);
  const NetworkEval plain =
      eval_network_fast(model, cfg, mem, SchedMode::kFused);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(cold.total_cycles, plain.total_cycles);
  EXPECT_EQ(warm.total_cycles, plain.total_cycles);
  EXPECT_EQ(warm.roofline.bound_cycles, plain.roofline.bound_cycles);
}

// --- LatencyKey no-alias contract --------------------------------------------

// Two configs differing ONLY in one of the newly keyed fields must
// produce different keys: a cache shared across the DSE grid would
// otherwise serve one config's cycles for another.
TEST(LatencyKey, NewConfigFieldsNeverAlias) {
  const LayerDesc dw = nn::make_depthwise("dw", 32, 28, 28, 3, 1, 1);
  ArrayConfig base;

  ArrayConfig pipe2 = base;
  pipe2.pipelining = Pipelining::kTransparent2;
  ArrayConfig pipe4 = base;
  pipe4.pipelining = Pipelining::kTransparent4;
  ArrayConfig int8 = base;
  int8.datapath = Datapath::kInt8;
  ArrayConfig fp32 = base;
  fp32.datapath = Datapath::kFp32;
  ArrayConfig no_bcast = base;
  no_bcast.broadcast_links = false;
  ArrayConfig no_overlap = base;
  no_overlap.overlap_fold_drain = false;
  ArrayConfig no_strided = base;
  no_strided.strided_fuse_dense_compute = false;
  ArrayConfig channelwise = base;
  channelwise.standard_conv_mapping =
      systolic::StandardConvMapping::kChannelwise;

  const std::vector<ArrayConfig> variants = {
      base,    pipe2,      pipe4,      int8,       fp32,
      no_bcast, no_overlap, no_strided, channelwise};
  for (std::size_t i = 0; i < variants.size(); ++i) {
    for (std::size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_FALSE(make_latency_key(dw, variants[i]) ==
                   make_latency_key(dw, variants[j]))
          << "configs " << i << " and " << j << " alias";
    }
  }
}

// The packed bitfields must not collide across combined settings either:
// every cross product of the two new enums gets a distinct key.
TEST(LatencyKey, PipeliningDatapathCrossProductDistinct) {
  const LayerDesc pw = nn::make_pointwise("pw", 8, 7, 7, 8);
  std::vector<LatencyKey> keys;
  for (Pipelining pipe : {Pipelining::kPipelined, Pipelining::kTransparent2,
                          Pipelining::kTransparent4}) {
    for (Datapath dp : {Datapath::kInt8, Datapath::kFp16, Datapath::kFp32}) {
      ArrayConfig cfg;
      cfg.pipelining = pipe;
      cfg.datapath = dp;
      keys.push_back(make_latency_key(pw, cfg));
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_FALSE(keys[i] == keys[j]) << i << " vs " << j;
    }
  }
}

// --- simulator guard ---------------------------------------------------------

// The cycle-accurate sims model the fully pipelined array; transparent
// configs must be rejected at construction, not silently mis-simulated.
TEST(SimGuard, RejectsTransparentConfigs) {
  ArrayConfig cfg;
  cfg.pipelining = Pipelining::kTransparent2;
  EXPECT_THROW(systolic::SystolicArraySim sim(cfg), util::Error);
  cfg.pipelining = Pipelining::kPipelined;
  EXPECT_NO_THROW(systolic::SystolicArraySim sim(cfg));
}

}  // namespace
}  // namespace fuse::sched
