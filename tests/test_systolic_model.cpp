// Tests for the analytic cycle model (SCALE-Sim methodology).
#include <gtest/gtest.h>

#include "systolic/config.hpp"
#include "systolic/cycle_model.hpp"
#include "util/check.hpp"

namespace fuse::systolic {
namespace {

ArrayConfig array_no_overlap(std::int64_t size) {
  ArrayConfig cfg = square_array(size);
  cfg.overlap_fold_drain = false;
  return cfg;
}

// --- config -----------------------------------------------------------------

TEST(ArrayConfig, ValidatesDimensions) {
  ArrayConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(cfg.validate(), util::Error);
  cfg.rows = 8;
  cfg.freq_mhz = -1.0;
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(ArrayConfig, ToStringMentionsBroadcast) {
  EXPECT_EQ(square_array(32, true).to_string(), "32x32 (+broadcast)");
  EXPECT_EQ(square_array(32, false).to_string(), "32x32");
}

// --- fold_cycles ------------------------------------------------------------

TEST(FoldCycles, DocumentedFormula) {
  // (R-1) + (Cc-1) + T + R
  EXPECT_EQ(fold_cycles(1, 1, 1), 2u);
  EXPECT_EQ(fold_cycles(8, 8, 16), 7u + 7 + 16 + 8);
  EXPECT_EQ(fold_cycles(64, 64, 9), 63u + 63 + 9 + 64);
}

TEST(FoldCycles, InvalidArgsThrow) {
  EXPECT_THROW(fold_cycles(0, 1, 1), util::Error);
  EXPECT_THROW(fold_cycles(1, 1, 0), util::Error);
}

// --- matmul_latency ---------------------------------------------------------

TEST(MatmulLatency, SingleFoldExactCycles) {
  const ArrayConfig cfg = array_no_overlap(8);
  const LatencyEstimate est = matmul_latency(8, 16, 8, cfg);
  EXPECT_EQ(est.folds, 1u);
  EXPECT_EQ(est.cycles, fold_cycles(8, 8, 16));
  EXPECT_EQ(est.mac_ops, 8ULL * 8 * 16);
}

TEST(MatmulLatency, TilesOverBothDimensions) {
  const ArrayConfig cfg = array_no_overlap(8);
  const LatencyEstimate est = matmul_latency(20, 4, 17, cfg);
  // ceil(20/8)=3 row folds, ceil(17/8)=3 col folds.
  EXPECT_EQ(est.folds, 9u);
  EXPECT_EQ(est.mac_ops, 20ULL * 17 * 4);
}

TEST(MatmulLatency, EdgeFoldsUseShorterSkew) {
  const ArrayConfig cfg = array_no_overlap(8);
  // 9 rows: one full 8-row fold + one 1-row fold (shorter skew and drain).
  const LatencyEstimate est = matmul_latency(9, 4, 8, cfg);
  EXPECT_EQ(est.cycles, fold_cycles(8, 8, 4) + fold_cycles(1, 8, 4));
}

TEST(MatmulLatency, OverlapSavesIntermediateDrains) {
  ArrayConfig no = array_no_overlap(8);
  ArrayConfig yes = square_array(8);
  yes.overlap_fold_drain = true;
  const LatencyEstimate a = matmul_latency(32, 8, 8, no);   // 4 folds
  const LatencyEstimate b = matmul_latency(32, 8, 8, yes);
  EXPECT_EQ(a.folds, b.folds);
  EXPECT_EQ(a.mac_ops, b.mac_ops);
  // Overlap saves (folds - 1) * drain = 3 * 8 cycles.
  EXPECT_EQ(a.cycles - b.cycles, 3u * 8);
}

TEST(MatmulLatency, UtilizationApproachesOneForDeepReductions) {
  const ArrayConfig cfg = array_no_overlap(16);
  const LatencyEstimate est = matmul_latency(16, 100000, 16, cfg);
  EXPECT_GT(est.utilization(), 0.99);
  EXPECT_LE(est.utilization(), 1.0);
}

TEST(MatmulLatency, UtilizationLowForSingleColumn) {
  const ArrayConfig cfg = array_no_overlap(64);
  const LatencyEstimate est = matmul_latency(64, 9, 1, cfg);
  EXPECT_LT(est.utilization(), 0.01);  // the depthwise pathology
}

TEST(MatmulLatency, InvalidDimsThrow) {
  EXPECT_THROW(matmul_latency(0, 1, 1, square_array(8)), util::Error);
}

// --- conv mappings ----------------------------------------------------------

TEST(ConvIm2col, MatchesEquivalentMatmul) {
  const ArrayConfig cfg = array_no_overlap(16);
  const LatencyEstimate conv =
      conv_im2col_latency(14, 14, 3, 3, 32, 64, cfg);
  const LatencyEstimate mm = matmul_latency(14 * 14, 3 * 3 * 32, 64, cfg);
  EXPECT_EQ(conv.cycles, mm.cycles);
  EXPECT_EQ(conv.mac_ops, mm.mac_ops);
}

TEST(DepthwiseIm2col, SerializesChannels) {
  const ArrayConfig cfg = array_no_overlap(16);
  const LatencyEstimate one =
      depthwise_im2col_latency(1, 14, 14, 3, cfg);
  const LatencyEstimate many =
      depthwise_im2col_latency(32, 14, 14, 3, cfg);
  EXPECT_EQ(many.cycles, 32u * one.cycles);
  EXPECT_EQ(many.mac_ops, 32u * one.mac_ops);
}

TEST(DepthwiseIm2col, WastesTheArray) {
  // The whole point of §III: single-column mapping -> utilization bounded
  // by 1/cols.
  const ArrayConfig cfg = array_no_overlap(64);
  const LatencyEstimate est =
      depthwise_im2col_latency(32, 56, 56, 3, cfg);
  EXPECT_LT(est.utilization(), 1.0 / 64);
}

TEST(ChannelwiseConv, TapsMultiplyCycles) {
  const ArrayConfig cfg = array_no_overlap(16);
  const LatencyEstimate one_tap =
      conv_channelwise_latency(14, 14, 1, 1, 32, 64, cfg);
  const LatencyEstimate nine_taps =
      conv_channelwise_latency(14, 14, 3, 3, 32, 64, cfg);
  EXPECT_EQ(nine_taps.cycles, 9u * one_tap.cycles);
}

TEST(ChannelwiseConv, SameMacsAsIm2col) {
  const ArrayConfig cfg = array_no_overlap(16);
  EXPECT_EQ(conv_channelwise_latency(14, 14, 3, 3, 32, 64, cfg).mac_ops,
            conv_im2col_latency(14, 14, 3, 3, 32, 64, cfg).mac_ops);
}

// --- fuse1d -----------------------------------------------------------------

TEST(Fuse1d, SingleWaveFormula) {
  const ArrayConfig cfg = array_no_overlap(8);
  // 8 lines x 8 outputs x 3 taps: (8-1) + 3 + 8.
  const LatencyEstimate est = fuse1d_latency(8, 8, 3, cfg);
  EXPECT_EQ(est.folds, 1u);
  EXPECT_EQ(est.cycles, 7u + 3 + 8);
  EXPECT_EQ(est.mac_ops, 8ULL * 8 * 3);
}

TEST(Fuse1d, RequiresBroadcastLinks) {
  const ArrayConfig cfg = square_array(8, /*broadcast=*/false);
  EXPECT_THROW(fuse1d_latency(8, 8, 3, cfg), util::Error);
}

TEST(Fuse1d, PacksManyLinesAcrossRows) {
  const ArrayConfig cfg = array_no_overlap(8);
  // 16 lines on an 8-row array: two waves.
  const LatencyEstimate est = fuse1d_latency(16, 8, 3, cfg);
  EXPECT_EQ(est.folds, 2u);
  EXPECT_EQ(est.cycles, 2u * (7 + 3 + 8));
}

TEST(Fuse1d, HighUtilizationUnlikeDepthwise) {
  // Same work shape as DepthwiseIm2col.WastesTheArray: 32 channels of
  // 56x56, K=3. FuSe rows: 32*56 lines of 56 outputs.
  const ArrayConfig cfg = array_no_overlap(64);
  const LatencyEstimate fuse = fuse1d_latency(32 * 56, 56, 3, cfg);
  const LatencyEstimate dw = depthwise_im2col_latency(32, 56, 56, 3, cfg);
  EXPECT_GT(fuse.utilization(), 10 * dw.utilization());
  EXPECT_LT(fuse.cycles, dw.cycles / 5);
}

TEST(Fuse1d, NoBroadcastFallbackIsSingleColumn) {
  const ArrayConfig cfg = array_no_overlap(64);
  const LatencyEstimate with = fuse1d_latency(64, 56, 3, cfg);
  const LatencyEstimate without =
      fuse1d_no_broadcast_latency(64, 56, 3, cfg);
  // Without the links every line serializes onto one column: much slower.
  EXPECT_GT(without.cycles, 10 * with.cycles);
  EXPECT_EQ(with.mac_ops, without.mac_ops);
}

TEST(Fuse1d, OverlapSavesDrains) {
  ArrayConfig no = array_no_overlap(8);
  ArrayConfig yes = square_array(8);
  const LatencyEstimate a = fuse1d_latency(32, 8, 3, no);  // 4 waves
  const LatencyEstimate b = fuse1d_latency(32, 8, 3, yes);
  EXPECT_EQ(a.cycles - b.cycles, 3u * 8);
}

// --- fully connected --------------------------------------------------------

TEST(FullyConnected, UsesOneRow) {
  const ArrayConfig cfg = array_no_overlap(64);
  const LatencyEstimate est = fully_connected_latency(1024, 1000, cfg);
  // M=1: 16 column folds, each (1-1) + (cols-1) + 1024 + 1.
  EXPECT_EQ(est.folds, 16u);
  EXPECT_EQ(est.mac_ops, 1024ULL * 1000);
  EXPECT_LT(est.utilization(), 1.0 / 32);
}

// --- LatencyEstimate accumulation -------------------------------------------

TEST(LatencyEstimate, AccumulatesAcrossOperators) {
  const ArrayConfig cfg = array_no_overlap(8);
  LatencyEstimate total = matmul_latency(8, 4, 8, cfg);
  const LatencyEstimate second = matmul_latency(8, 6, 8, cfg);
  total += second;
  EXPECT_EQ(total.folds, 2u);
  EXPECT_EQ(total.cycles,
            fold_cycles(8, 8, 4) + fold_cycles(8, 8, 6));
}

TEST(LatencyEstimate, MixingArraySizesThrows) {
  LatencyEstimate a = matmul_latency(4, 4, 4, square_array(8));
  const LatencyEstimate b = matmul_latency(4, 4, 4, square_array(16));
  EXPECT_THROW(a += b, util::Error);
}

// --- property sweeps --------------------------------------------------------

class MatmulLatencyProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MatmulLatencyProperty, MacOpsIndependentOfArraySize) {
  const auto [m, t, n, size] = GetParam();
  const LatencyEstimate est =
      matmul_latency(m, t, n, array_no_overlap(size));
  EXPECT_EQ(est.mac_ops, static_cast<std::uint64_t>(m) * t * n);
}

TEST_P(MatmulLatencyProperty, BiggerArraysNeverSlower) {
  const auto [m, t, n, size] = GetParam();
  const LatencyEstimate small =
      matmul_latency(m, t, n, array_no_overlap(size));
  const LatencyEstimate big =
      matmul_latency(m, t, n, array_no_overlap(2 * size));
  EXPECT_LE(big.cycles, small.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatmulLatencyProperty,
    ::testing::Combine(::testing::Values(1, 7, 64, 100),
                       ::testing::Values(1, 9, 64),
                       ::testing::Values(1, 8, 33),
                       ::testing::Values(4, 8, 32)));

}  // namespace
}  // namespace fuse::systolic

// NOTE: appended suite — weight/input-stationary dataflow models.
namespace fuse::systolic {
namespace {

ArrayConfig dataflow_array(Dataflow df, std::int64_t size, bool overlap) {
  ArrayConfig cfg = square_array(size);
  cfg.dataflow = df;
  cfg.overlap_fold_drain = overlap;
  return cfg;
}

TEST(DataflowNames, AllDistinct) {
  EXPECT_EQ(dataflow_name(Dataflow::kOutputStationary), "OS");
  EXPECT_EQ(dataflow_name(Dataflow::kWeightStationary), "WS");
  EXPECT_EQ(dataflow_name(Dataflow::kInputStationary), "IS");
}

TEST(WeightStationary, SingleFoldFormula) {
  // One fold: T_u preload + (M + T_u + N_u - 2) streaming.
  const ArrayConfig cfg =
      dataflow_array(Dataflow::kWeightStationary, 8, false);
  const LatencyEstimate est = matmul_latency(10, 8, 8, cfg);
  EXPECT_EQ(est.folds, 1u);
  EXPECT_EQ(est.cycles, 8u + (10 + 8 + 8 - 2));
  EXPECT_EQ(est.mac_ops, 10ULL * 8 * 8);
}

TEST(WeightStationary, FoldsOverReductionAndColumns) {
  const ArrayConfig cfg =
      dataflow_array(Dataflow::kWeightStationary, 8, false);
  // T=20 -> 3 row folds; N=17 -> 3 col folds; M unlimited (streams).
  const LatencyEstimate est = matmul_latency(5, 20, 17, cfg);
  EXPECT_EQ(est.folds, 9u);
  EXPECT_EQ(est.mac_ops, 5ULL * 20 * 17);
}

TEST(WeightStationary, OverlapHidesPreloadsExceptFirst) {
  const ArrayConfig no =
      dataflow_array(Dataflow::kWeightStationary, 8, false);
  const ArrayConfig yes =
      dataflow_array(Dataflow::kWeightStationary, 8, true);
  // 4 folds of full 8x8 tiles: overlap saves 3 preloads of 8 cycles.
  const LatencyEstimate a = matmul_latency(16, 16, 16, no);
  const LatencyEstimate b = matmul_latency(16, 16, 16, yes);
  EXPECT_EQ(a.cycles - b.cycles, 3u * 8);
}

TEST(InputStationary, SingleFoldFormula) {
  const ArrayConfig cfg =
      dataflow_array(Dataflow::kInputStationary, 8, false);
  const LatencyEstimate est = matmul_latency(8, 8, 10, cfg);
  EXPECT_EQ(est.folds, 1u);
  EXPECT_EQ(est.cycles, 8u + (10 + 8 + 8 - 2));
  EXPECT_EQ(est.mac_ops, 8ULL * 8 * 10);
}

TEST(InputStationary, MirrorsWeightStationaryWhenTilesTranspose) {
  // IS pins the [M, T] tile and streams N; WS on the transposed problem
  // (N, T, M) pins [T, M]. The per-fold pipeline terms transpose exactly;
  // the preload term is one cycle per *array row* of the pinned tile, so
  // the costs coincide whenever M == T (tiles are square under
  // transposition). For M != T the streaming cycles still match and only
  // preload differs.
  const ArrayConfig is_cfg =
      dataflow_array(Dataflow::kInputStationary, 8, false);
  const ArrayConfig ws_cfg =
      dataflow_array(Dataflow::kWeightStationary, 8, false);
  for (const auto [m, t, n] :
       {std::tuple{7, 7, 7}, std::tuple{12, 12, 5}, std::tuple{16, 16, 3}}) {
    EXPECT_EQ(matmul_latency(m, t, n, is_cfg).cycles,
              matmul_latency(n, t, m, ws_cfg).cycles)
        << m << "," << t << "," << n;
  }
  // MAC counts transpose regardless of tile shape.
  EXPECT_EQ(matmul_latency(4, 12, 9, is_cfg).mac_ops,
            matmul_latency(9, 12, 4, ws_cfg).mac_ops);
}

TEST(DataflowComparison, WsBeatsOsForTallSkinnyReuse) {
  // Large M with a small weight matrix: WS loads the weights once and
  // streams; OS re-skews every fold.
  const ArrayConfig os = dataflow_array(Dataflow::kOutputStationary, 8, true);
  const ArrayConfig ws = dataflow_array(Dataflow::kWeightStationary, 8, true);
  const std::int64_t m = 4096, t = 8, n = 8;
  EXPECT_LT(matmul_latency(m, t, n, ws).cycles,
            matmul_latency(m, t, n, os).cycles);
}

TEST(DataflowComparison, OsBeatsWsForDeepReduction) {
  // Deep reduction with small output: OS keeps outputs pinned while T
  // streams; WS folds over T and pays per-fold pipeline refill.
  const ArrayConfig os = dataflow_array(Dataflow::kOutputStationary, 8, true);
  const ArrayConfig ws = dataflow_array(Dataflow::kWeightStationary, 8, true);
  const std::int64_t m = 8, t = 4096, n = 8;
  EXPECT_LT(matmul_latency(m, t, n, os).cycles,
            matmul_latency(m, t, n, ws).cycles);
}

TEST(DataflowDispatch, ConvMappingsFollowConfiguredDataflow) {
  const ArrayConfig ws = dataflow_array(Dataflow::kWeightStationary, 16, true);
  EXPECT_EQ(conv_im2col_latency(14, 14, 3, 3, 32, 64, ws).cycles,
            matmul_latency(14 * 14, 3 * 3 * 32, 64, ws).cycles);
  // Depthwise stays single-column under every dataflow (the §III argument
  // is about the lowered shape, not the dataflow).
  const LatencyEstimate dw = depthwise_im2col_latency(32, 14, 14, 3, ws);
  EXPECT_LT(dw.utilization(), 1.0 / 16);
}


TEST(RectangularArrays, FoldWalkHonorsRowsAndColsIndependently) {
  ArrayConfig tall;
  tall.rows = 16;
  tall.cols = 4;
  tall.overlap_fold_drain = false;
  // M=16 fits the rows in one fold; N=16 needs 4 column folds.
  const LatencyEstimate est = matmul_latency(16, 8, 16, tall);
  EXPECT_EQ(est.folds, 4u);
  EXPECT_EQ(est.cycles, 4u * fold_cycles(16, 4, 8));
}

TEST(RectangularArrays, FuseWavesScaleWithRows) {
  // Twice the rows, same PEs: half the line waves.
  ArrayConfig tall;
  tall.rows = 32;
  tall.cols = 8;
  ArrayConfig wide;
  wide.rows = 8;
  wide.cols = 32;
  const LatencyEstimate on_tall = fuse1d_latency(64, 8, 3, tall);
  const LatencyEstimate on_wide = fuse1d_latency(64, 8, 3, wide);
  EXPECT_EQ(on_tall.folds, 2u);   // 64 lines / 32 rows
  EXPECT_EQ(on_wide.folds, 8u);   // 64 lines / 8 rows
  EXPECT_LT(on_tall.cycles, on_wide.cycles);
}

}  // namespace
}  // namespace fuse::systolic
