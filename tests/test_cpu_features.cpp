// Tests for the CPUID probe (util/cpu_features.hpp), the ULP comparison
// utility (util/ulp.hpp), and the runtime ISA selection rules built on
// them (nn/kernels.hpp). Feature bits are machine-dependent, so the
// probe tests check INVARIANTS (implications between features, probe
// stability, string formatting) rather than specific values; the ULP
// tests pin exact distances on hand-built bit patterns so the tolerance
// itself is under test.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "nn/kernels.hpp"
#include "util/cpu_features.hpp"
#include "util/ulp.hpp"

namespace fuse {
namespace {

// ---------------------------------------------------------------------------
// CPUID probe
// ---------------------------------------------------------------------------

TEST(CpuFeatures, ImplicationChainHolds) {
  // Feature sets are supersets down the chain: avx512f => avx2 => fma
  // (as we gate it) => avx => sse2. A CPU/OS combination reporting a
  // higher tier without the lower ones means the probe mis-decoded
  // CPUID.
  const util::CpuFeatures& f = util::cpu_features();
  if (f.avx512f) {
    EXPECT_TRUE(f.avx2);
  }
  if (f.avx2) {
    EXPECT_TRUE(f.avx);
  }
  if (f.fma) {
    EXPECT_TRUE(f.avx);
  }
  if (f.avx) {
    EXPECT_TRUE(f.sse2);
  }
#if defined(__x86_64__)
  // x86-64 baseline mandates SSE2.
  EXPECT_TRUE(f.sse2);
#endif
}

TEST(CpuFeatures, ProbeIsStable) {
  // cpu_features() caches one probe; repeated calls must return the same
  // object with identical bits.
  const util::CpuFeatures& a = util::cpu_features();
  const util::CpuFeatures& b = util::cpu_features();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.avx2, b.avx2);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(CpuFeatures, ToStringListsDetectedFlags) {
  const util::CpuFeatures& f = util::cpu_features();
  const std::string s = f.to_string();
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.find("avx2") != std::string::npos, f.avx2);
  EXPECT_EQ(s.find("fma") != std::string::npos, f.fma);
  if (!f.sse2 && !f.avx && !f.fma && !f.avx2 && !f.avx512f) {
    EXPECT_EQ(s, "none");
  }
}

TEST(CpuFeatures, AgreesWithCompilerOnThisBinary) {
  // If this very binary was compiled assuming AVX2 everywhere, running
  // here means the hardware has it — the probe must agree.
#if defined(__AVX2__)
  EXPECT_TRUE(util::cpu_features().avx2);
#endif
#if defined(__FMA__)
  EXPECT_TRUE(util::cpu_features().fma);
#endif
}

// ---------------------------------------------------------------------------
// ULP distance (the comparison the SIMD differential tests stand on)
// ---------------------------------------------------------------------------

float bits_to_float(std::uint32_t bits) {
  float f;
  static_assert(sizeof(f) == sizeof(bits));
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

TEST(Ulp, IdenticalValuesAreZeroApart) {
  EXPECT_EQ(util::ulp_distance(1.0F, 1.0F), 0);
  EXPECT_EQ(util::ulp_distance(-3.5F, -3.5F), 0);
  EXPECT_EQ(util::ulp_distance(0.0F, 0.0F), 0);
}

TEST(Ulp, SignedZerosAreZeroApart) {
  EXPECT_EQ(util::ulp_distance(0.0F, -0.0F), 0);
  EXPECT_EQ(util::ulp_distance(-0.0F, 0.0F), 0);
}

TEST(Ulp, AdjacentFloatsAreOneApart) {
  const float one = 1.0F;
  const float next = std::nextafterf(one, 2.0F);
  EXPECT_EQ(util::ulp_distance(one, next), 1);
  EXPECT_EQ(util::ulp_distance(next, one), 1);
  // Across an exponent boundary (2.0 -> just below 2.0).
  const float two = 2.0F;
  const float below = std::nextafterf(two, 0.0F);
  EXPECT_EQ(util::ulp_distance(two, below), 1);
  // Across zero: smallest positive and smallest negative denormal.
  const float tiny_pos = bits_to_float(0x00000001U);
  const float tiny_neg = bits_to_float(0x80000001U);
  EXPECT_EQ(util::ulp_distance(tiny_pos, tiny_neg), 2);
  EXPECT_EQ(util::ulp_distance(tiny_pos, 0.0F), 1);
  EXPECT_EQ(util::ulp_distance(tiny_neg, 0.0F), 1);
}

TEST(Ulp, DistanceIsExactInBitSpace) {
  // 1.0 has bit pattern 0x3f800000; 1.0 + 5 ulps is 0x3f800005.
  EXPECT_EQ(util::ulp_distance(bits_to_float(0x3f800000U),
                               bits_to_float(0x3f800005U)),
            5);
  // Sign-symmetric.
  EXPECT_EQ(util::ulp_distance(bits_to_float(0xbf800000U),
                               bits_to_float(0xbf800005U)),
            5);
}

TEST(Ulp, NanNeverComparesCloseUnlessBitIdentical) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(util::ulp_distance(nan, 1.0F),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(util::ulp_distance(1.0F, nan),
            std::numeric_limits<std::int64_t>::max());
  // Bit-identical NaNs are "equal" (a buffer memcpy'd through both paths
  // must compare clean).
  EXPECT_EQ(util::ulp_distance(nan, nan), 0);
  const util::UlpTolerance loose{1 << 20, 1e30};
  EXPECT_TRUE(util::ulp_within(nan, nan, loose));
  EXPECT_FALSE(util::ulp_within(nan, 1.0F, loose));
}

TEST(Ulp, WithinHonorsBothBranches) {
  const util::UlpTolerance tol{4, 1e-6};
  // Relative branch: 3 ulps apart.
  const float base = 100.0F;
  float three_up = base;
  for (int i = 0; i < 3; ++i) {
    three_up = std::nextafterf(three_up, 1e30F);
  }
  EXPECT_TRUE(util::ulp_within(base, three_up, tol));
  // Outside the relative branch but inside the absolute one: values near
  // zero after cancellation.
  EXPECT_TRUE(util::ulp_within(1e-7F, -1e-7F, tol));  // huge ulp, tiny abs
  // Outside both.
  EXPECT_FALSE(util::ulp_within(1.0F, 1.001F, tol));
}

TEST(Ulp, BitExactToleranceIsMemcmpEquality) {
  const util::UlpTolerance exact{};  // {0, 0.0}
  EXPECT_TRUE(util::ulp_within(2.5F, 2.5F, exact));
  EXPECT_TRUE(util::ulp_within(0.0F, -0.0F, exact));  // distance 0 by design
  EXPECT_FALSE(
      util::ulp_within(2.5F, std::nextafterf(2.5F, 3.0F), exact));
}

TEST(Ulp, KernelToleranceScalesWithReductionLength) {
  const util::UlpTolerance t1 = util::kernel_float_tolerance(1, 1.0);
  const util::UlpTolerance t64 = util::kernel_float_tolerance(64, 64.0);
  EXPECT_EQ(t1.max_ulps, 8 * 1 + 16);
  EXPECT_EQ(t64.max_ulps, 8 * 64 + 16);
  EXPECT_GT(t64.abs_tol, t1.abs_tol);
  // The documented formula: 4 * k * 2^-24 * magnitude.
  EXPECT_DOUBLE_EQ(t64.abs_tol, 4.0 * 64 * 0x1p-24 * 64.0);
  // Degenerate k: bit-exact.
  const util::UlpTolerance t0 = util::kernel_float_tolerance(0, 100.0);
  EXPECT_EQ(t0.max_ulps, 0);
  EXPECT_EQ(t0.abs_tol, 0.0);
}

TEST(Ulp, KernelToleranceRejectsGrossErrors) {
  // An indexing bug shifts the result by roughly one whole product —
  // orders of magnitude beyond both branches for any realistic k.
  const util::UlpTolerance tol = util::kernel_float_tolerance(512, 512.0);
  EXPECT_FALSE(util::ulp_within(1.0F, 1.5F, tol));
  EXPECT_FALSE(util::ulp_within(0.0F, 0.5F, tol));
}

// ---------------------------------------------------------------------------
// ISA availability rules built on the probe
// ---------------------------------------------------------------------------

TEST(KernelIsaAvailability, ScalarAlwaysAvx2OnlyWithHardware) {
  EXPECT_TRUE(nn::kernel_isa_available(nn::KernelIsa::kScalar));
  const util::CpuFeatures& f = util::cpu_features();
  if (!f.avx2 || !f.fma) {
    EXPECT_FALSE(nn::kernel_isa_available(nn::KernelIsa::kAvx2));
  }
  // The active ISA is always an available one.
  EXPECT_TRUE(nn::kernel_isa_available(nn::kernel_isa()));
}

}  // namespace
}  // namespace fuse
