// Shared wiring of the sweep-driven benches: every table/figure binary
// that fans work across a SweepEngine registers the same --threads /
// --no-cache flags, times the parallel section with a steady clock, and
// prints the same "sweep: ..." cache-stats footer. SweepHarness owns that
// boilerplate so each bench only contains its own sweep and table.
//
// Every bench also gains the telemetry flags: --trace-json=<path> attaches
// a global trace sink for the engine's lifetime and writes the runtime
// span timeline (wall-clock us: sweep cells, parallel_fors) on exit;
// --stats-json=<path> dumps the metrics registry (cache hits/misses,
// steal counts, per-layer histograms); --profile-json=<path> attaches a
// ProfileCollector and writes span wall-clock statistics (exact
// p50/p90/p99, self vs child time). All three are silent — stdout and CSV
// output stay byte-identical whether or not the flags are set.
//
// Usage:
//   util::CliFlags flags;
//   ...bench-specific flags...
//   bench::SweepHarness harness(flags);   // registers the sweep flags
//   flags.parse(argc, argv);
//   auto& engine = harness.engine(flags); // builds engine, starts clock
//   ...parallel work through engine...
//   harness.stop();                       // freeze wall time (optional)
//   table.print(std::cout);
//   harness.print_footer();               // "sweep: N threads, cache ..."
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "sched/sweep.hpp"
#include "util/cli.hpp"

namespace fuse::util {
class ProfileCollector;
class TraceSink;
}

namespace fuse::bench {

/// Registers --trace-json/--stats-json/--profile-json on `flags` (all
/// default empty = off). SweepHarness calls this; standalone tools can
/// reuse it.
void add_telemetry_flags(util::CliFlags& flags);

/// Registers --kernel-backend (fast|reference, default: current, i.e.
/// FUSE_KERNEL_BACKEND or fast), --kernel-isa (scalar|avx2|auto,
/// default: current, i.e. FUSE_KERNEL_ISA or the best available), and
/// --kernel-threads (total threads for the fast kernels' parallel_for,
/// default: current). SweepHarness calls this; standalone tools can
/// reuse the set.
void add_kernel_flags(util::CliFlags& flags);

/// Applies the parsed kernel flags to the process-wide backend state.
void apply_kernel_flags(const util::CliFlags& flags);

/// Registers --sim-backend (fast|reference, default: current, i.e.
/// FUSE_SIM_BACKEND or fast) and --sim-threads (total threads for the fast
/// simulator's fold parallel_for, default: current). SweepHarness calls
/// this; the sim-driven examples reuse the pair.
void add_sim_flags(util::CliFlags& flags);

/// Applies the parsed sim flags to the process-wide simulator state.
void apply_sim_flags(const util::CliFlags& flags);

/// Registers --sched-mode (per-layer|fused, default: current, i.e.
/// FUSE_SCHED_MODE or per-layer). Controls whether network_roofline /
/// network_latency use the per-layer schedule or the fused NetworkPlan
/// (sched/netplan.hpp). SweepHarness calls this; standalone tools can
/// reuse the pair.
void add_sched_flags(util::CliFlags& flags);

/// Applies the parsed sched flags to the process-wide schedule mode.
void apply_sched_flags(const util::CliFlags& flags);

/// RAII wiring of the parsed telemetry flags for any tool: attaches a
/// global TraceSink (--trace-json) and ProfileCollector (--profile-json)
/// for its lifetime, then detaches and silently writes the requested
/// files — including the --stats-json metrics dump — on destruction (or
/// at an explicit finalize()). Construct AFTER flags.parse(). Stdout is
/// untouched, so golden outputs stay byte-identical with the flags off.
class TelemetryScope {
 public:
  explicit TelemetryScope(const util::CliFlags& flags);
  ~TelemetryScope();

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  /// Detaches and writes now; idempotent.
  void finalize();

 private:
  std::unique_ptr<util::TraceSink> sink_;
  std::unique_ptr<util::ProfileCollector> collector_;
  std::string trace_path_;
  std::string stats_path_;
  std::string profile_path_;
  bool finalized_ = false;
};

class SweepHarness {
 public:
  /// Registers --threads/--no-cache plus the telemetry flags on `flags`.
  /// Call before parse().
  explicit SweepHarness(util::CliFlags& flags);

  /// Detaches the trace sink and writes any requested telemetry files if
  /// print_footer() never ran.
  ~SweepHarness();

  /// Builds the engine from the parsed flags and starts the wall clock.
  /// When --trace-json is set, also attaches the process-wide trace sink
  /// so spans emitted under this engine land in the file. Call once,
  /// after flags.parse().
  sched::SweepEngine& engine(const util::CliFlags& flags);

  /// Freezes the wall-clock measurement; later calls are no-ops, so the
  /// timed window ends at the first stop() (or at print_footer()).
  void stop();

  /// Prints the sweep stats footer — the sweep_stats_line plus the kernel
  /// and sim backends that produced the run (stops the clock first if
  /// running) — then silently writes --trace-json/--stats-json if
  /// requested.
  void print_footer();

 private:
  void finalize();  // detach sink + write files; idempotent, silent

  std::optional<sched::SweepEngine> engine_;
  std::chrono::steady_clock::time_point start_;
  double wall_ms_ = -1.0;
  std::optional<TelemetryScope> telemetry_;
};

}  // namespace fuse::bench
