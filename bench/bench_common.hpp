// Shared wiring of the sweep-driven benches: every table/figure binary
// that fans work across a SweepEngine registers the same --threads /
// --no-cache flags, times the parallel section with a steady clock, and
// prints the same "sweep: ..." cache-stats footer. SweepHarness owns that
// boilerplate so each bench only contains its own sweep and table.
//
// Usage:
//   util::CliFlags flags;
//   ...bench-specific flags...
//   bench::SweepHarness harness(flags);   // registers the sweep flags
//   flags.parse(argc, argv);
//   auto& engine = harness.engine(flags); // builds engine, starts clock
//   ...parallel work through engine...
//   harness.stop();                       // freeze wall time (optional)
//   table.print(std::cout);
//   harness.print_footer();               // "sweep: N threads, cache ..."
#pragma once

#include <chrono>
#include <optional>

#include "sched/sweep.hpp"
#include "util/cli.hpp"

namespace fuse::bench {

class SweepHarness {
 public:
  /// Registers --threads/--no-cache on `flags`. Call before parse().
  explicit SweepHarness(util::CliFlags& flags);

  /// Builds the engine from the parsed flags and starts the wall clock.
  /// Call once, after flags.parse().
  sched::SweepEngine& engine(const util::CliFlags& flags);

  /// Freezes the wall-clock measurement; later calls are no-ops, so the
  /// timed window ends at the first stop() (or at print_footer()).
  void stop();

  /// Prints the sweep stats footer (stops the clock first if running).
  void print_footer();

 private:
  std::optional<sched::SweepEngine> engine_;
  std::chrono::steady_clock::time_point start_;
  double wall_ms_ = -1.0;
};

}  // namespace fuse::bench
