// Ablation: does the FuSe result depend on the output-stationary choice?
// The paper evaluates OS only (§V-A3) and names WS/IS as the standard
// alternatives (§II-C). This bench re-runs the headline speedups with the
// matmul-shaped work (standard/pointwise convs, FC) mapped under each of
// the three dataflows. (The FuSe 1-D stage always uses its own broadcast
// wave dataflow, which co-exists with the vertical systolic flow.)
//
// Usage: bench_ablation_dataflow [--size=64] [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/latency.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;
using systolic::Dataflow;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_ablation_dataflow.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const std::int64_t size = flags.get_int("size");
  std::printf(
      "Ablation: FuSe-Half speedup under OS / WS / IS dataflows "
      "(%lldx%lld array)\n\n",
      static_cast<long long>(size), static_cast<long long>(size));

  const Dataflow dataflows[] = {Dataflow::kOutputStationary,
                                Dataflow::kWeightStationary,
                                Dataflow::kInputStationary};

  util::TablePrinter table({"Network", "OS", "WS", "IS"});
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id : nets::paper_networks()) {
    std::vector<std::string> row = {nets::network_name(id)};
    std::vector<std::string> csv_row = row;
    for (Dataflow df : dataflows) {
      auto cfg = systolic::square_array(size);
      cfg.dataflow = df;
      const double speedup = sched::speedup_vs_baseline(
          id, core::NetworkVariant::kFuseHalf, cfg);
      row.push_back(util::fixed(speedup, 2) + "x");
      csv_row.push_back(util::fixed(speedup, 3));
    }
    table.add_row(row);
    csv_rows.push_back(csv_row);
  }
  table.print(std::cout);
  std::printf(
      "\nconclusion: the speedup is a property of the depthwise mapping "
      "pathology, not\nof the output-stationary choice — it survives under "
      "all three dataflows.\n");

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_ablation_dataflow.csv");
    csv.write_header({"network", "os", "ws", "is"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("wrote bench_ablation_dataflow.csv\n");
  }
  return 0;
}
