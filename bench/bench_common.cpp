#include "bench_common.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace fuse::bench {

SweepHarness::SweepHarness(util::CliFlags& flags) {
  sched::add_sweep_flags(flags);
}

sched::SweepEngine& SweepHarness::engine(const util::CliFlags& flags) {
  FUSE_CHECK(!engine_) << "SweepHarness::engine called twice";
  engine_.emplace(sched::sweep_options_from_flags(flags));
  start_ = std::chrono::steady_clock::now();
  return *engine_;
}

void SweepHarness::stop() {
  if (wall_ms_ < 0.0) {
    wall_ms_ = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
  }
}

void SweepHarness::print_footer() {
  FUSE_CHECK(engine_) << "SweepHarness::print_footer before engine()";
  stop();
  std::printf("\n%s\n", sched::sweep_stats_line(*engine_, wall_ms_).c_str());
}

}  // namespace fuse::bench
