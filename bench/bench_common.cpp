#include "bench_common.hpp"

#include <cstdio>

#include "nn/kernels.hpp"
#include "sched/netplan.hpp"
#include "systolic/sim.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"
#include "util/trace_sink.hpp"

namespace fuse::bench {

void add_telemetry_flags(util::CliFlags& flags) {
  flags.add_string("trace-json", "",
                   "write runtime span timeline here (Perfetto JSON)");
  flags.add_string("stats-json", "",
                   "write the metrics registry here as JSON");
  flags.add_string("profile-json", "",
                   "write span wall-clock stats (exact p50/p90/p99, "
                   "self vs child time) here as JSON");
}

void add_kernel_flags(util::CliFlags& flags) {
  flags.add_string("kernel-backend",
                   nn::kernel_backend_name(nn::kernel_backend()),
                   "functional kernel backend: fast or reference");
  flags.add_string("kernel-isa", nn::kernel_isa_name(nn::kernel_isa()),
                   "fast-kernel instruction set: scalar, avx2, or auto");
  flags.add_int("kernel-threads", nn::kernel_threads(),
                "total threads for the fast kernels' tile parallel_for");
}

void apply_kernel_flags(const util::CliFlags& flags) {
  const std::string name = flags.get_string("kernel-backend");
  nn::KernelBackend backend;
  FUSE_CHECK(nn::parse_kernel_backend(name, &backend))
      << "--kernel-backend must be 'fast' or 'reference', got '" << name
      << "'";
  nn::set_kernel_backend(backend);
  const std::string isa_name = flags.get_string("kernel-isa");
  nn::KernelIsa isa;
  FUSE_CHECK(nn::parse_kernel_isa(isa_name, &isa))
      << "--kernel-isa must be 'scalar', 'avx2', or 'auto', got '" << isa_name
      << "'";
  // An explicitly requested but unavailable ISA is a hard error here
  // (set_kernel_isa FUSE_CHECKs availability) — unlike the
  // FUSE_KERNEL_ISA environment fallback, a CLI flag states intent.
  nn::set_kernel_isa(isa);
  const std::int64_t threads = flags.get_int("kernel-threads");
  FUSE_CHECK(threads >= 1) << "--kernel-threads must be >= 1";
  if (threads != nn::kernel_threads()) {
    nn::set_kernel_threads(static_cast<int>(threads));
  }
}

void add_sim_flags(util::CliFlags& flags) {
  flags.add_string("sim-backend",
                   systolic::sim_backend_name(systolic::sim_backend()),
                   "cycle-accurate simulator engine: fast or reference");
  flags.add_int("sim-threads", systolic::sim_threads(),
                "total threads for the fast simulator's fold parallel_for");
}

void apply_sim_flags(const util::CliFlags& flags) {
  const std::string name = flags.get_string("sim-backend");
  systolic::SimBackend backend;
  FUSE_CHECK(systolic::parse_sim_backend(name, &backend))
      << "--sim-backend must be 'fast' or 'reference', got '" << name << "'";
  systolic::set_sim_backend(backend);
  const std::int64_t threads = flags.get_int("sim-threads");
  FUSE_CHECK(threads >= 1) << "--sim-threads must be >= 1";
  if (threads != systolic::sim_threads()) {
    systolic::set_sim_threads(static_cast<int>(threads));
  }
}

void add_sched_flags(util::CliFlags& flags) {
  flags.add_string("sched-mode", sched::sched_mode_name(sched::sched_mode()),
                   "network schedule: per-layer or fused");
}

void apply_sched_flags(const util::CliFlags& flags) {
  const std::string name = flags.get_string("sched-mode");
  sched::SchedMode mode;
  // A bad FUSE_SCHED_MODE env value soft-falls-back to per-layer, but the
  // CLI flag states intent: reject typos hard.
  FUSE_CHECK(sched::parse_sched_mode(name, &mode))
      << "--sched-mode must be 'per-layer' or 'fused', got '" << name << "'";
  sched::set_sched_mode(mode);
}

TelemetryScope::TelemetryScope(const util::CliFlags& flags)
    : trace_path_(flags.get_string("trace-json")),
      stats_path_(flags.get_string("stats-json")),
      profile_path_(flags.get_string("profile-json")) {
  if (!trace_path_.empty() && util::telemetry_enabled()) {
    sink_ = std::make_unique<util::TraceSink>();
    sink_->process_name("fuseconv sweep (ts unit = wall us)");
    util::set_global_trace_sink(sink_.get());
  }
  if (!profile_path_.empty() && util::telemetry_enabled()) {
    collector_ = std::make_unique<util::ProfileCollector>();
    util::set_global_profile_collector(collector_.get());
  }
}

TelemetryScope::~TelemetryScope() { finalize(); }

void TelemetryScope::finalize() {
  if (finalized_) {
    return;
  }
  finalized_ = true;
  if (sink_) {
    // Detach before writing so nothing appends mid-serialization. No
    // parallel work is in flight here: the pools only run workers inside
    // parallel_for, which blocks its caller.
    util::set_global_trace_sink(nullptr);
    sink_->write_json_file(trace_path_);
  }
  if (collector_) {
    util::set_global_profile_collector(nullptr);
    collector_->write_json_file(profile_path_);
  }
  if (!profile_path_.empty() && !collector_) {
    // FUSE_TELEMETRY off: still honor the flag with an empty document.
    util::ProfileCollector().write_json_file(profile_path_);
  }
  if (!stats_path_.empty()) {
    util::metrics().write_json_file(stats_path_);
  }
}

SweepHarness::SweepHarness(util::CliFlags& flags) {
  sched::add_sweep_flags(flags);
  add_telemetry_flags(flags);
  add_kernel_flags(flags);
  add_sim_flags(flags);
  add_sched_flags(flags);
}

SweepHarness::~SweepHarness() { finalize(); }

sched::SweepEngine& SweepHarness::engine(const util::CliFlags& flags) {
  FUSE_CHECK(!engine_) << "SweepHarness::engine called twice";
  apply_kernel_flags(flags);
  apply_sim_flags(flags);
  apply_sched_flags(flags);
  telemetry_.emplace(flags);
  engine_.emplace(sched::sweep_options_from_flags(flags));
  start_ = std::chrono::steady_clock::now();
  return *engine_;
}

void SweepHarness::stop() {
  if (wall_ms_ < 0.0) {
    wall_ms_ = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
  }
}

void SweepHarness::finalize() {
  if (telemetry_) {
    telemetry_->finalize();
  }
}

void SweepHarness::print_footer() {
  FUSE_CHECK(engine_) << "SweepHarness::print_footer before engine()";
  stop();
  // Record engine provenance on the footer line (filtered out of golden
  // comparisons together with the varying wall time).
  std::printf("\n%s, kernels=%s/%s, sim=%s, sched=%s\n",
              sched::sweep_stats_line(*engine_, wall_ms_).c_str(),
              nn::kernel_backend_name(nn::kernel_backend()),
              nn::kernel_isa_name(nn::kernel_isa()),
              systolic::sim_backend_name(systolic::sim_backend()),
              sched::sched_mode_name(sched::sched_mode()));
  finalize();
}

}  // namespace fuse::bench
