// Reproduces the introduction's motivating observation: MobileNet-V2 has
// ~12x fewer MACs than ResNet-50, yet runs only ~1.3x faster on a 32x32
// systolic array — the incommensurate scaling that motivates FuSeConv.
//
// Usage: bench_intro_resnet [--size=32]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/latency.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 32, "systolic array size (SxS)");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  std::printf(
      "Intro claim reproduction — ResNet-50 vs MobileNet-V2 on %s\n"
      "paper: V2 has 12x fewer MACs but runs only ~1.3x faster\n\n",
      cfg.to_string().c_str());

  const nets::NetworkModel r50 = nets::resnet50();
  const nets::NetworkModel v2 =
      nets::build_network(nets::NetworkId::kMobileNetV2);
  const sched::NetworkLatency lat_r50 = sched::network_latency(r50, cfg);
  const sched::NetworkLatency lat_v2 = sched::network_latency(v2, cfg);

  util::TablePrinter table(
      {"Network", "MACs (M)", "Cycles", "Utilization"});
  table.add_row({"ResNet-50",
                 util::fixed(static_cast<double>(r50.total_macs()) / 1e6, 0),
                 util::with_commas(lat_r50.total_cycles),
                 util::fixed(100.0 * lat_r50.utilization(cfg), 1) + "%"});
  table.add_row({"MobileNet-V2",
                 util::fixed(static_cast<double>(v2.total_macs()) / 1e6, 0),
                 util::with_commas(lat_v2.total_cycles),
                 util::fixed(100.0 * lat_v2.utilization(cfg), 1) + "%"});
  table.print(std::cout);

  const double mac_ratio = static_cast<double>(r50.total_macs()) /
                           static_cast<double>(v2.total_macs());
  const double speed_ratio = static_cast<double>(lat_r50.total_cycles) /
                             static_cast<double>(lat_v2.total_cycles);
  std::printf(
      "\nMAC ratio R50/V2:   %.1fx (paper: ~12x)\n"
      "speed ratio R50/V2: %.2fx (paper: ~1.3x) — the incommensurate "
      "scaling\n",
      mac_ratio, speed_ratio);

  // And the punchline: with the FuSe transform, V2 pulls far ahead.
  const sched::VariantBuild fused = sched::build_variant(
      nets::NetworkId::kMobileNetV2, core::NetworkVariant::kFuseFull, cfg);
  const auto lat_fused = sched::network_latency(fused.model, cfg);
  std::printf(
      "after FuSe-Full transform: V2 is %.1fx faster than ResNet-50\n",
      static_cast<double>(lat_r50.total_cycles) /
          static_cast<double>(lat_fused.total_cycles));
  return 0;
}
