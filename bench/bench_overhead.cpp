// Reproduces §V-B5: area/power overhead of the per-row weight-broadcast
// links. The paper synthesized a 32x32 array (Bluespec -> NanGate 45 nm,
// Synopsys DC) and measured 4.35% area / 2.25% power; this repo substitutes
// a calibrated component-level model (see DESIGN.md) and additionally
// sweeps the overhead across array sizes.
//
// Usage: bench_overhead [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "hw/area_power.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_bool("csv", false, "also write bench_overhead.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const hw::PeComponentModel model = hw::nangate45_model();
  std::printf(
      "Broadcast-link overhead (45 nm component model)\n"
      "paper reference @32x32: area +4.35%%, power +2.25%%\n\n");

  util::TablePrinter table({"Array", "Area (mm^2)", "Power (mW)",
                            "Area overhead", "Power overhead"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::int64_t size : {8, 16, 32, 64, 128}) {
    const hw::ArrayHwReport with =
        hw::array_hw(systolic::square_array(size, true), model);
    const hw::OverheadReport overhead = hw::broadcast_overhead(size, model);
    table.add_row({std::to_string(size) + "x" + std::to_string(size),
                   util::fixed(with.area_mm2, 3),
                   util::fixed(with.power_mw, 0),
                   "+" + util::fixed(overhead.area_pct, 2) + "%",
                   "+" + util::fixed(overhead.power_pct, 2) + "%"});
    csv_rows.push_back({std::to_string(size),
                        util::fixed(with.area_mm2, 4),
                        util::fixed(with.power_mw, 1),
                        util::fixed(overhead.area_pct, 3),
                        util::fixed(overhead.power_pct, 3)});
  }
  table.print(std::cout);

  const hw::OverheadReport at32 = hw::broadcast_overhead(32, model);
  std::printf("\nmeasured @32x32: area +%.2f%% (paper 4.35%%), power "
              "+%.2f%% (paper 2.25%%)\n",
              at32.area_pct, at32.power_pct);

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_overhead.csv");
    csv.write_header({"size", "area_mm2", "power_mw", "area_overhead_pct",
                      "power_overhead_pct"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("wrote bench_overhead.csv\n");
  }
  return 0;
}
