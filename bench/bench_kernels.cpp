// Micro-kernel wall-clock benchmarks (google-benchmark): reference-vs-
// fast pairs for every operator the kernel backend accelerates (GEMM,
// dense conv, pointwise, depthwise, FuSe row/col, linear) at
// MobileNet-V2 geometries, the FuSeConv stage forward under both
// backends, and the cycle-level simulator primitives. These support Fig.
// 8(c)'s operator-level view with host-side numbers and keep the
// simulator's own cost visible.
//
// Besides the usual google-benchmark flags, `--json=<path>` writes a
// machine-readable row per benchmark: {op, backend, isa, ns_per_op,
// gflops} — the perf-trajectory artifact results/BENCH_kernels.json is
// regenerated from (tools/regenerate_results.sh). The fast_scalar legs
// pin FUSE_KERNEL_ISA=scalar so the artifact records the scalar-vs-SIMD
// split on the machine that produced it.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/fuseconv.hpp"
#include "nn/kernels.hpp"
#include "nn/ops.hpp"
#include "systolic/sim.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using fuse::nn::Conv2dParams;
using fuse::nn::KernelBackend;
using fuse::tensor::Shape;
using fuse::tensor::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  fuse::util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

/// Variant label for the ref-vs-fast pairs. fast_t2/fast_t4 size the
/// kernel pool to 2/4 total threads (the scaling legs); reference and
/// fast run single-threaded. fast_scalar pins the portable scalar ISA
/// so the fast/fast_scalar pair isolates the SIMD micro-kernel speedup
/// from the blocking/fusion win the scalar fast path already has.
struct Variant {
  const char* label;
  KernelBackend backend;
  int threads;
  const char* isa;  // "scalar" or "auto" (resolves to best available)
};

constexpr Variant kReference{"reference", KernelBackend::kReference, 1,
                             "scalar"};
constexpr Variant kFast{"fast", KernelBackend::kFast, 1, "auto"};
constexpr Variant kFastScalar{"fast_scalar", KernelBackend::kFast, 1,
                              "scalar"};
constexpr Variant kFastT2{"fast_t2", KernelBackend::kFast, 2, "auto"};
constexpr Variant kFastT4{"fast_t4", KernelBackend::kFast, 4, "auto"};

/// Pins backend + ISA + threads for one benchmark run and restores
/// single-threaded fast on the best available ISA afterwards (the
/// process default).
struct VariantScope {
  explicit VariantScope(const Variant& v) {
    fuse::nn::set_kernel_backend(v.backend);
    fuse::nn::set_kernel_isa(parse_isa(v.isa));
    fuse::nn::set_kernel_threads(v.threads);
  }
  ~VariantScope() {
    fuse::nn::set_kernel_backend(KernelBackend::kFast);
    fuse::nn::set_kernel_isa(parse_isa("auto"));
    fuse::nn::set_kernel_threads(1);
  }

  static fuse::nn::KernelIsa parse_isa(const char* name) {
    fuse::nn::KernelIsa isa = fuse::nn::KernelIsa::kScalar;
    fuse::nn::parse_kernel_isa(name, &isa);
    return isa;
  }
};

void set_flops(benchmark::State& state, std::int64_t macs) {
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(2 * macs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

// --- GEMM at the MobileNet-V2 bottleneck geometry (im2col of the
// [1, 96, 14, 14] -> 576 expansion): [196, 576] x [576, 96].
void BM_Gemm(benchmark::State& state, Variant v) {
  VariantScope scope(v);
  const Tensor a = random_tensor(Shape{196, 576}, 1);
  const Tensor b = random_tensor(Shape{576, 96}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.backend == KernelBackend::kReference
                                 ? fuse::nn::matmul_reference(a, b)
                                 : fuse::nn::kernels::matmul_fast(a, b));
  }
  set_flops(state, 196 * 576 * 96);
}
BENCHMARK_CAPTURE(BM_Gemm, reference, kReference);
BENCHMARK_CAPTURE(BM_Gemm, fast, kFast);
BENCHMARK_CAPTURE(BM_Gemm, fast_scalar, kFastScalar);
BENCHMARK_CAPTURE(BM_Gemm, fast_t2, kFastT2);
BENCHMARK_CAPTURE(BM_Gemm, fast_t4, kFastT4);

/// Shared driver for the conv pairs: runs nn::conv2d through the public
/// dispatcher under the variant's backend.
void run_conv(benchmark::State& state, const Variant& v, const Tensor& input,
              const Tensor& weight, const Conv2dParams& p,
              std::int64_t macs) {
  VariantScope scope(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuse::nn::conv2d(input, weight, nullptr, p));
  }
  set_flops(state, macs);
}

// --- MobileNet-V2 stem: [1, 3, 112, 112] -> 32, 3x3 stride 2 pad 1.
void BM_Conv3x3(benchmark::State& state, Variant v) {
  const Tensor input = random_tensor(Shape{1, 3, 112, 112}, 3);
  const Tensor weight = random_tensor(Shape{32, 3, 3, 3}, 4);
  const Conv2dParams p{2, 2, 1, 1, 1, 1, 1};
  run_conv(state, v, input, weight, p,
           /*macs=*/static_cast<std::int64_t>(32) * 3 * 3 * 3 * 56 * 56);
}
BENCHMARK_CAPTURE(BM_Conv3x3, reference, kReference);
BENCHMARK_CAPTURE(BM_Conv3x3, fast, kFast);
BENCHMARK_CAPTURE(BM_Conv3x3, fast_scalar, kFastScalar);

// --- MobileNet-V2 expansion pointwise: [1, 96, 14, 14] -> 576, 1x1.
void BM_PointwiseConv(benchmark::State& state, Variant v) {
  const Tensor input = random_tensor(Shape{1, 96, 14, 14}, 5);
  const Tensor weight = random_tensor(Shape{576, 96, 1, 1}, 6);
  run_conv(state, v, input, weight, Conv2dParams{},
           /*macs=*/static_cast<std::int64_t>(576) * 96 * 14 * 14);
}
BENCHMARK_CAPTURE(BM_PointwiseConv, reference, kReference);
BENCHMARK_CAPTURE(BM_PointwiseConv, fast, kFast);
BENCHMARK_CAPTURE(BM_PointwiseConv, fast_scalar, kFastScalar);
BENCHMARK_CAPTURE(BM_PointwiseConv, fast_t2, kFastT2);

// --- MobileNet-V2 depthwise: [1, 144, 56, 56], 3x3 pad 1, groups = C.
void BM_DepthwiseConv3x3(benchmark::State& state, Variant v) {
  const Tensor input = random_tensor(Shape{1, 144, 56, 56}, 7);
  const Tensor weight = random_tensor(Shape{144, 1, 3, 3}, 8);
  const Conv2dParams p{1, 1, 1, 1, 1, 1, 144};
  run_conv(state, v, input, weight, p,
           /*macs=*/static_cast<std::int64_t>(144) * 9 * 56 * 56);
}
BENCHMARK_CAPTURE(BM_DepthwiseConv3x3, reference, kReference);
BENCHMARK_CAPTURE(BM_DepthwiseConv3x3, fast, kFast);
BENCHMARK_CAPTURE(BM_DepthwiseConv3x3, fast_scalar, kFastScalar);

// --- FuSe row branch: the same geometry factored to 1x3, groups = C.
void BM_FuseRow(benchmark::State& state, Variant v) {
  const Tensor input = random_tensor(Shape{1, 144, 56, 56}, 9);
  const Tensor weight = random_tensor(Shape{144, 1, 1, 3}, 10);
  const Conv2dParams p{1, 1, 0, 1, 1, 1, 144};
  run_conv(state, v, input, weight, p,
           /*macs=*/static_cast<std::int64_t>(144) * 3 * 56 * 56);
}
BENCHMARK_CAPTURE(BM_FuseRow, reference, kReference);
BENCHMARK_CAPTURE(BM_FuseRow, fast, kFast);
BENCHMARK_CAPTURE(BM_FuseRow, fast_scalar, kFastScalar);

// --- FuSe col branch: 3x1, groups = C.
void BM_FuseCol(benchmark::State& state, Variant v) {
  const Tensor input = random_tensor(Shape{1, 144, 56, 56}, 11);
  const Tensor weight = random_tensor(Shape{144, 1, 3, 1}, 12);
  const Conv2dParams p{1, 1, 1, 0, 1, 1, 144};
  run_conv(state, v, input, weight, p,
           /*macs=*/static_cast<std::int64_t>(144) * 3 * 56 * 56);
}
BENCHMARK_CAPTURE(BM_FuseCol, reference, kReference);
BENCHMARK_CAPTURE(BM_FuseCol, fast, kFast);
BENCHMARK_CAPTURE(BM_FuseCol, fast_scalar, kFastScalar);

// --- Classifier: [8, 1280] x [1000, 1280] linear.
void BM_Linear(benchmark::State& state, Variant v) {
  VariantScope scope(v);
  const Tensor input = random_tensor(Shape{8, 1280}, 13);
  const Tensor weight = random_tensor(Shape{1000, 1280}, 14);
  const Tensor bias = random_tensor(Shape{1000}, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuse::nn::linear(input, weight, &bias));
  }
  set_flops(state, static_cast<std::int64_t>(8) * 1280 * 1000);
}
BENCHMARK_CAPTURE(BM_Linear, reference, kReference);
BENCHMARK_CAPTURE(BM_Linear, fast, kFast);
BENCHMARK_CAPTURE(BM_Linear, fast_scalar, kFastScalar);
BENCHMARK_CAPTURE(BM_Linear, fast_t2, kFastT2);

// --- FuSeConv stage forward (both 1-D branches + concat/pointwise as
// applicable) through the dispatcher, MobileNet-scale shrunk 4x.
constexpr std::int64_t kC = 32;
constexpr std::int64_t kHW = 28;

void run_fuse_stage(benchmark::State& state, const Variant& v,
                    fuse::core::FuseVariant variant) {
  VariantScope scope(v);
  fuse::core::FuseConvSpec spec;
  spec.channels = kC;
  spec.in_h = kHW;
  spec.in_w = kHW;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = variant;
  fuse::util::Rng rng(16);
  const fuse::core::FuseConvStage stage(spec, rng);
  const Tensor input = random_tensor(Shape{1, kC, kHW, kHW}, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stage.forward(input));
  }
}

void BM_FuseConvHalf(benchmark::State& state, Variant v) {
  run_fuse_stage(state, v, fuse::core::FuseVariant::kHalf);
}
BENCHMARK_CAPTURE(BM_FuseConvHalf, reference, kReference);
BENCHMARK_CAPTURE(BM_FuseConvHalf, fast, kFast);

void BM_FuseConvFull(benchmark::State& state, Variant v) {
  run_fuse_stage(state, v, fuse::core::FuseVariant::kFull);
}
BENCHMARK_CAPTURE(BM_FuseConvFull, reference, kReference);
BENCHMARK_CAPTURE(BM_FuseConvFull, fast, kFast);

// --- Cycle-level simulator primitives (no backend pairing: the sim is
// the measured artifact itself).
void BM_SimMatmul(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  fuse::systolic::SystolicArraySim sim(fuse::systolic::square_array(size));
  const Tensor a = random_tensor(Shape{size, 32}, 18);
  const Tensor b = random_tensor(Shape{32, size}, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.matmul(a, b));
  }
}
BENCHMARK(BM_SimMatmul)->Arg(8)->Arg(16)->Arg(32);

void BM_SimConv1dBroadcast(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  fuse::systolic::SystolicArraySim sim(fuse::systolic::square_array(size));
  const Tensor lines = random_tensor(Shape{size, size + 2}, 20);
  const Tensor kernels = random_tensor(Shape{size, 3}, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.conv1d_broadcast(lines, kernels));
  }
}
BENCHMARK(BM_SimConv1dBroadcast)->Arg(8)->Arg(16)->Arg(32);

// --- Reporting -----------------------------------------------------------

struct JsonRow {
  std::string name;
  double ns_per_op = 0.0;
  double gflops = 0.0;
};

/// Console output as usual, plus a captured row per run for --json.
/// Color only on a real terminal — an explicitly-passed ConsoleReporter
/// would otherwise embed escape codes in the piped golden.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  CapturingReporter()
      : benchmark::ConsoleReporter(isatty(fileno(stdout)) != 0
                                       ? OO_ColorTabular
                                       : OO_Tabular) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) {
        continue;
      }
      JsonRow row;
      row.name = run.benchmark_name();
      row.ns_per_op = run.GetAdjustedRealTime();  // default unit: ns
      const auto it = run.counters.find("flops");
      if (it != run.counters.end()) {
        row.gflops = it->second.value / 1e9;  // kIsRate -> FLOP/s
      }
      rows_.push_back(std::move(row));
    }
  }

  const std::vector<JsonRow>& rows() const { return rows_; }

 private:
  std::vector<JsonRow> rows_;
};

/// "BM_Gemm/fast_t2" -> {"gemm", "fast_t2"}; sim benches ("BM_SimMatmul/8")
/// report backend "sim".
std::pair<std::string, std::string> parse_name(const std::string& name) {
  std::string op = name;
  std::string backend = "sim";
  const std::size_t slash = op.find('/');
  if (slash != std::string::npos) {
    const std::string suffix = op.substr(slash + 1);
    if (suffix == "reference" || suffix.rfind("fast", 0) == 0) {
      backend = suffix;
    }
    op = op.substr(0, slash);
  }
  if (op.rfind("BM_", 0) == 0) {
    op = op.substr(3);
  }
  for (char& c : op) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return {op, backend};
}

/// ISA the variant behind this row ran under: reference and fast_scalar
/// pin scalar, other fast legs resolve "auto" to the best available ISA
/// on the producing machine, and the sim benches sit outside the kernel
/// dispatch entirely.
std::string isa_for_backend(const std::string& backend) {
  if (backend == "sim") {
    return "none";
  }
  if (backend == "reference" || backend == "fast_scalar") {
    return "scalar";
  }
  return fuse::nn::kernel_isa_name(
      VariantScope::parse_isa("auto"));
}

void write_json(const std::string& path, const std::vector<JsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_kernels: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto [op, backend] = parse_name(rows[i].name);
    const std::string isa = isa_for_backend(backend);
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"op\": \"%s\", \"backend\": \"%s\", "
                 "\"isa\": \"%s\", \"ns_per_op\": %.1f, \"gflops\": %.3f}%s\n",
                 rows[i].name.c_str(), op.c_str(), backend.c_str(),
                 isa.c_str(), rows[i].ns_per_op, rows[i].gflops,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json=<path> before google-benchmark sees the argv.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  // The variant scopes control threading explicitly; start single-threaded
  // fast so the unpaired benches are deterministic too.
  fuse::nn::set_kernel_backend(fuse::nn::KernelBackend::kFast);
  fuse::nn::set_kernel_threads(1);
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    write_json(json_path, reporter.rows());
  }
  return 0;
}
