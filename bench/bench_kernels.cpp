// Micro-kernel wall-clock benchmarks (google-benchmark): the functional
// reference operators and the cycle-level simulator primitives. These
// support Fig. 8(c)'s operator-level view with host-side numbers and keep
// the simulator's own cost visible.
#include <benchmark/benchmark.h>

#include "core/fuseconv.hpp"
#include "nn/ops.hpp"
#include "systolic/sim.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using fuse::tensor::Shape;
using fuse::tensor::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  fuse::util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

// One depthwise-separable unit at MobileNet-scale geometry (shrunk 4x to
// keep the benchmark quick): 32 channels, 28x28.
constexpr std::int64_t kC = 32;
constexpr std::int64_t kHW = 28;

void BM_DepthwiseConv3x3(benchmark::State& state) {
  const Tensor input = random_tensor(Shape{1, kC, kHW, kHW}, 1);
  const Tensor weight = random_tensor(Shape{kC, 1, 3, 3}, 2);
  fuse::nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  p.groups = kC;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuse::nn::conv2d(input, weight, nullptr, p));
  }
}
BENCHMARK(BM_DepthwiseConv3x3);

void BM_FuseConvHalf(benchmark::State& state) {
  fuse::core::FuseConvSpec spec;
  spec.channels = kC;
  spec.in_h = kHW;
  spec.in_w = kHW;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = fuse::core::FuseVariant::kHalf;
  fuse::util::Rng rng(3);
  const fuse::core::FuseConvStage stage(spec, rng);
  const Tensor input = random_tensor(Shape{1, kC, kHW, kHW}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stage.forward(input));
  }
}
BENCHMARK(BM_FuseConvHalf);

void BM_FuseConvFull(benchmark::State& state) {
  fuse::core::FuseConvSpec spec;
  spec.channels = kC;
  spec.in_h = kHW;
  spec.in_w = kHW;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = fuse::core::FuseVariant::kFull;
  fuse::util::Rng rng(5);
  const fuse::core::FuseConvStage stage(spec, rng);
  const Tensor input = random_tensor(Shape{1, kC, kHW, kHW}, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stage.forward(input));
  }
}
BENCHMARK(BM_FuseConvFull);

void BM_PointwiseConv(benchmark::State& state) {
  const Tensor input = random_tensor(Shape{1, kC, kHW, kHW}, 7);
  const Tensor weight = random_tensor(Shape{2 * kC, kC, 1, 1}, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fuse::nn::conv2d(input, weight, nullptr, {}));
  }
}
BENCHMARK(BM_PointwiseConv);

void BM_SimMatmul(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  fuse::systolic::SystolicArraySim sim(fuse::systolic::square_array(size));
  const Tensor a = random_tensor(Shape{size, 32}, 9);
  const Tensor b = random_tensor(Shape{32, size}, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.matmul(a, b));
  }
}
BENCHMARK(BM_SimMatmul)->Arg(8)->Arg(16)->Arg(32);

void BM_SimConv1dBroadcast(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  fuse::systolic::SystolicArraySim sim(fuse::systolic::square_array(size));
  const Tensor lines = random_tensor(Shape{size, size + 2}, 11);
  const Tensor kernels = random_tensor(Shape{size, 3}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.conv1d_broadcast(lines, kernels));
  }
}
BENCHMARK(BM_SimConv1dBroadcast)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
