// Extension: does the FuSe speedup hold across the MobileNet width-
// multiplier family ("the MobileNet family of networks" of the paper's
// abstract)? Sweeps alpha for V1 and V2 and reports baseline MACs and the
// Full/Half speedups on the paper's 64x64 array. Narrower networks expose
// the array's under-utilization even more, so the speedup should not decay
// at small alpha.
//
// Usage: bench_width_mult [--size=64] [--csv]
#include <cstdio>
#include <iostream>

#include "sched/latency.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_width_mult.csv");
  flags.parse(argc, argv);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const double alphas[] = {0.25, 0.5, 0.75, 1.0};

  std::printf(
      "Width-multiplier sweep on %s — FuSe speedups across the MobileNet "
      "family\n\n",
      cfg.to_string().c_str());

  util::TablePrinter table({"Network", "alpha", "MACs (M)", "Params (M)",
                            "Full speedup", "Half speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id :
       {nets::NetworkId::kMobileNetV1, nets::NetworkId::kMobileNetV2}) {
    const int slots = nets::num_fuse_slots(id);
    for (double alpha : alphas) {
      const auto baseline = nets::build_network_scaled(id, alpha);
      const auto full = nets::build_network_scaled(
          id, alpha, core::uniform_modes(slots, core::FuseMode::kFull));
      const auto half = nets::build_network_scaled(
          id, alpha, core::uniform_modes(slots, core::FuseMode::kHalf));
      const std::uint64_t base_cycles =
          sched::network_latency(baseline, cfg).total_cycles;
      const double full_speedup =
          static_cast<double>(base_cycles) /
          static_cast<double>(
              sched::network_latency(full, cfg).total_cycles);
      const double half_speedup =
          static_cast<double>(base_cycles) /
          static_cast<double>(
              sched::network_latency(half, cfg).total_cycles);
      table.add_row(
          {nets::network_name(id), util::fixed(alpha, 2),
           util::fixed(static_cast<double>(baseline.total_macs()) / 1e6, 0),
           util::fixed(static_cast<double>(baseline.total_params()) / 1e6,
                       2),
           util::fixed(full_speedup, 2) + "x",
           util::fixed(half_speedup, 2) + "x"});
      csv_rows.push_back({nets::network_name(id), util::fixed(alpha, 2),
                          std::to_string(baseline.total_macs()),
                          std::to_string(baseline.total_params()),
                          util::fixed(full_speedup, 3),
                          util::fixed(half_speedup, 3)});
    }
    table.add_separator();
  }
  table.print(std::cout);

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_width_mult.csv");
    csv.write_header({"network", "alpha", "macs", "params", "full_speedup",
                      "half_speedup"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("\nwrote bench_width_mult.csv\n");
  }
  return 0;
}
