// Extension: does the FuSe speedup hold across the MobileNet width-
// multiplier family ("the MobileNet family of networks" of the paper's
// abstract)? Sweeps alpha for V1 and V2 and reports baseline MACs and the
// Full/Half speedups on the paper's 64x64 array. Narrower networks expose
// the array's under-utilization even more, so the speedup should not decay
// at small alpha.
//
// Usage: bench_width_mult [--size=64] [--csv] [--threads=N] [--no-cache]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/sweep.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_width_mult.csv");
  bench::SweepHarness harness(flags);
  flags.parse(argc, argv);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const std::vector<nets::NetworkId> networks = {
      nets::NetworkId::kMobileNetV1, nets::NetworkId::kMobileNetV2};
  const std::vector<double> alphas = {0.25, 0.5, 0.75, 1.0};

  std::printf(
      "Width-multiplier sweep on %s — FuSe speedups across the MobileNet "
      "family\n\n",
      cfg.to_string().c_str());

  struct Point {
    std::uint64_t macs = 0;
    std::uint64_t params = 0;
    double full_speedup = 0.0;
    double half_speedup = 0.0;
  };
  const std::int64_t cells =
      static_cast<std::int64_t>(networks.size() * alphas.size());
  std::vector<Point> points(static_cast<std::size_t>(cells));
  sched::SweepEngine& engine = harness.engine(flags);
  engine.pool().parallel_for(cells, [&](std::int64_t flat) {
    const std::size_t n = static_cast<std::size_t>(flat) / alphas.size();
    const double alpha =
        alphas[static_cast<std::size_t>(flat) % alphas.size()];
    const nets::NetworkId id = networks[n];
    const int slots = nets::num_fuse_slots(id);
    const auto baseline = nets::build_network_scaled(id, alpha);
    const auto full = nets::build_network_scaled(
        id, alpha, core::uniform_modes(slots, core::FuseMode::kFull));
    const auto half = nets::build_network_scaled(
        id, alpha, core::uniform_modes(slots, core::FuseMode::kHalf));
    const std::uint64_t base_cycles = engine.network_cycles(baseline, cfg);
    Point& p = points[static_cast<std::size_t>(flat)];
    p.macs = baseline.total_macs();
    p.params = baseline.total_params();
    p.full_speedup = static_cast<double>(base_cycles) /
                     static_cast<double>(engine.network_cycles(full, cfg));
    p.half_speedup = static_cast<double>(base_cycles) /
                     static_cast<double>(engine.network_cycles(half, cfg));
  });
  harness.stop();

  util::TablePrinter table({"Network", "alpha", "MACs (M)", "Params (M)",
                            "Full speedup", "Half speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t n = 0; n < networks.size(); ++n) {
    const nets::NetworkId id = networks[n];
    for (std::size_t a = 0; a < alphas.size(); ++a) {
      const Point& p = points[n * alphas.size() + a];
      table.add_row(
          {nets::network_name(id), util::fixed(alphas[a], 2),
           util::fixed(static_cast<double>(p.macs) / 1e6, 0),
           util::fixed(static_cast<double>(p.params) / 1e6, 2),
           util::fixed(p.full_speedup, 2) + "x",
           util::fixed(p.half_speedup, 2) + "x"});
      csv_rows.push_back({nets::network_name(id), util::fixed(alphas[a], 2),
                          std::to_string(p.macs), std::to_string(p.params),
                          util::fixed(p.full_speedup, 3),
                          util::fixed(p.half_speedup, 3)});
    }
    table.add_separator();
  }
  table.print(std::cout);
  harness.print_footer();

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_width_mult.csv");
    csv.write_header({"network", "alpha", "macs", "params", "full_speedup",
                      "half_speedup"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("\nwrote bench_width_mult.csv\n");
  }
  return 0;
}
