// Extension: what dynamic batching is worth when the array is SERVING —
// many independent requests, not one offline batch. Three experiments,
// all in the virtual cycle domain (byte-deterministic for a fixed seed,
// any machine, any --workers):
//
//   1. Saturation throughput — closed-loop clients (fixed concurrency)
//      drive one shape through a batch-1 engine and a dynamically
//      batching engine sharing the same ModelPool. The speedup is the
//      amortized weight traffic: a batch streams each layer's weights
//      once, so memory-bound shapes (small resolutions, FuSe variants)
//      gain the most. The bench FUSE_CHECKs the headline claim: best
//      scenario >= 2x batch-1 throughput.
//   2. Open-loop rate sweep — a seeded arrival trace at increasing rates
//      against one engine config; reports completed/shed counts and
//      p50/p90/p99 latency, the classic throughput-vs-tail tradeoff.
//   3. Multi-tenant mix — two custom chain models served concurrently in
//      tensor mode (real kernels through the worker pool); the response
//      fingerprint pins byte-determinism across --workers values.
//
// Usage: bench_serve [--size=64] [--total=96] [--concurrency=16]
//                    [--window=400] [--max-batch=8] [--workers=2]
//                    [--json=<path>] [--csv]
//   --json writes the machine-readable rows consumed by
//   results/BENCH_serve.json (tools/regenerate_results.sh). The artifact
//   declares "metric_families": every metric here is exact — including
//   speedup_vs_b1, which the name-based wall-clock heuristic in
//   tools/bench_compare.py would otherwise treat as noisy.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nn/layer.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/model_pool.hpp"
#include "serve/request.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

namespace {

struct SaturationRow {
  std::string scenario;
  std::uint64_t service_b1 = 0;       // batch-1 roofline service cycles
  std::uint64_t service_bmax = 0;     // service cycles at the batch cap
  std::uint64_t makespan_b1 = 0;
  std::uint64_t makespan_batched = 0;
  double mean_batch = 0.0;
  double p99_b1 = 0.0;
  double p99_batched = 0.0;
  double throughput_b1 = 0.0;       // requests per Mcycle
  double throughput_batched = 0.0;
  double speedup = 0.0;             // batched vs batch-1 throughput
};

struct SweepRow {
  std::uint64_t mean_gap = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double mean_batch = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double throughput = 0.0;
};

struct TenantRow {
  std::string mix;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  double p99 = 0.0;
  std::string fingerprint;  // FNV-1a over every response record
};

/// Closed-loop run of one (engine config, shape); fills half a row.
struct LoopLeg {
  std::uint64_t makespan = 0;
  double p99 = 0.0;
  double mean_batch = 0.0;
  double throughput = 0.0;
};

LoopLeg run_leg(serve::ModelPool& pool, const serve::ServeConfig& config,
                const serve::ShapeKey& key, int concurrency,
                std::int64_t total) {
  serve::ServeEngine engine(config, &pool);
  const serve::ClosedLoopResult result =
      serve::run_closed_loop(engine, key, 0, concurrency, total);
  FUSE_CHECK(result.completed == static_cast<std::uint64_t>(total))
      << "closed loop shed requests (capacity too small?)";
  const serve::ServeStats stats = engine.stats();
  LoopLeg leg;
  leg.makespan = result.makespan_cycles;
  leg.p99 = stats.p99_latency_cycles;
  leg.mean_batch = stats.mean_batch_size;
  leg.throughput = stats.throughput_per_mcycle;
  return leg;
}

/// FNV-1a over the scheduling fields of every response, as a hex string.
std::string response_fingerprint(const serve::ServeEngine& engine) {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (v >> (8 * byte)) & 0xffULL;
      hash *= 1099511628211ULL;
    }
  };
  for (std::uint64_t id = 0; id < engine.num_requests(); ++id) {
    const serve::ResponseRecord r = engine.response(id);
    mix(r.id);
    mix(static_cast<std::uint64_t>(r.status));
    mix(r.arrival_cycle);
    mix(r.dispatch_cycle);
    mix(r.start_cycle);
    mix(r.completion_cycle);
    mix(r.batch_id);
    mix(static_cast<std::uint64_t>(r.batch_size));
    mix(static_cast<std::uint64_t>(r.array_index + 1));
    mix(r.checksum);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

nets::NetworkModel tenant_chain_a() {
  nets::NetworkModel model;
  model.name = "tenant-a";
  model.layers.push_back(nn::make_conv("c1", 3, 16, 16, 8, 3, 1, 1));
  model.layers.push_back(nn::make_depthwise("dw1", 8, 16, 16, 3, 1, 1));
  model.layers.push_back(nn::make_pointwise("pw1", 8, 16, 16, 16));
  return model;
}

nets::NetworkModel tenant_chain_b() {
  nets::NetworkModel model;
  model.name = "tenant-b";
  model.layers.push_back(nn::make_depthwise("dw1", 6, 12, 12, 3, 1, 1));
  model.layers.push_back(nn::make_pointwise("pw1", 6, 12, 12, 10));
  return model;
}

void write_json(const std::string& path,
                const std::vector<SaturationRow>& saturation,
                const std::vector<SweepRow>& sweep,
                const std::vector<TenantRow>& tenants,
                const systolic::ArrayConfig& cfg, int max_batch,
                std::uint64_t window) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FUSE_CHECK(f != nullptr) << "cannot write " << path;
  // Every metric is a cycle-domain model output: exact on any machine.
  // Declared explicitly because "speedup_vs_b1" would otherwise hit the
  // wall-clock name heuristic in tools/bench_compare.py.
  std::fprintf(f,
               "{\n  \"bench\": \"bench_serve\",\n"
               "  \"array\": \"%s\",\n"
               "  \"max_batch\": %d,\n  \"batch_window\": %llu,\n"
               "  \"metric_families\": {\"exact\": [\"*\"]},\n"
               "  \"rows\": [\n",
               cfg.to_string().c_str(), max_batch,
               static_cast<unsigned long long>(window));
  bool first = true;
  const auto sep = [&first, f]() {
    if (!first) {
      std::fprintf(f, ",\n");
    }
    first = false;
  };
  for (const SaturationRow& r : saturation) {
    sep();
    std::fprintf(
        f,
        "    {\"experiment\": \"saturation\", \"scenario\": \"%s\", "
        "\"service_cycles_b1\": %llu, \"service_cycles_bmax\": %llu, "
        "\"makespan_b1\": %llu, \"makespan_batched\": %llu, "
        "\"mean_batch\": %.4f, \"p99_b1_cycles\": %.1f, "
        "\"p99_batched_cycles\": %.1f, \"throughput_b1_per_mcycle\": %.4f, "
        "\"throughput_batched_per_mcycle\": %.4f, \"speedup_vs_b1\": %.4f}",
        r.scenario.c_str(),
        static_cast<unsigned long long>(r.service_b1),
        static_cast<unsigned long long>(r.service_bmax),
        static_cast<unsigned long long>(r.makespan_b1),
        static_cast<unsigned long long>(r.makespan_batched), r.mean_batch,
        r.p99_b1, r.p99_batched, r.throughput_b1, r.throughput_batched,
        r.speedup);
  }
  for (const SweepRow& r : sweep) {
    sep();
    std::fprintf(
        f,
        "    {\"experiment\": \"rate_sweep\", \"label\": \"gap=%llu\", "
        "\"mean_gap\": %llu, "
        "\"offered\": %llu, \"completed\": %llu, \"rejected\": %llu, "
        "\"mean_batch\": %.4f, \"p50_cycles\": %.1f, \"p90_cycles\": %.1f, "
        "\"p99_cycles\": %.1f, \"throughput_per_mcycle\": %.4f}",
        static_cast<unsigned long long>(r.mean_gap),
        static_cast<unsigned long long>(r.mean_gap),
        static_cast<unsigned long long>(r.offered),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.rejected), r.mean_batch, r.p50,
        r.p90, r.p99, r.throughput);
  }
  for (const TenantRow& r : tenants) {
    sep();
    std::fprintf(
        f,
        "    {\"experiment\": \"multi_tenant\", \"mix\": \"%s\", "
        "\"offered\": %llu, \"completed\": %llu, \"rejected\": %llu, "
        "\"batches\": %llu, \"mean_batch\": %.4f, \"p99_cycles\": %.1f, "
        "\"fingerprint\": \"%s\"}",
        r.mix.c_str(), static_cast<unsigned long long>(r.offered),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.batches), r.mean_batch, r.p99,
        r.fingerprint.c_str());
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_int("total", 96, "requests per closed-loop leg");
  flags.add_int("concurrency", 16, "closed-loop outstanding clients");
  flags.add_int("window", 400, "batch window (cycles) for batched legs");
  flags.add_int("max-batch", 8, "batch size cap");
  flags.add_int("workers", 2, "payload worker threads (tensor mode)");
  flags.add_string("json", "", "write machine-readable rows here");
  flags.add_bool("csv", false, "also write bench_serve.csv");
  bench::add_telemetry_flags(flags);
  bench::add_kernel_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::TelemetryScope telemetry(flags);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const systolic::MemoryConfig mem;
  const int max_batch = static_cast<int>(flags.get_int("max-batch"));
  const std::uint64_t window =
      static_cast<std::uint64_t>(flags.get_int("window"));
  const int concurrency = static_cast<int>(flags.get_int("concurrency"));
  const std::int64_t total = flags.get_int("total");
  const int workers = static_cast<int>(flags.get_int("workers"));

  serve::ModelPool pool(cfg, mem);

  std::printf(
      "Multi-tenant serving: dynamic batching vs batch-1 on one array\n"
      "(%s array, %g B/cycle DRAM; closed loop, %d clients, %lld requests\n"
      "per leg; batched legs use window=%llu cycles, cap=%d; all times are\n"
      "virtual cycles, so every number is machine-independent)\n\n",
      cfg.to_string().c_str(), mem.dram_bytes_per_cycle, concurrency,
      static_cast<long long>(total),
      static_cast<unsigned long long>(window), max_batch);

  // --- 1. Saturation throughput: batch-1 vs batched, per scenario. ---
  struct Scenario {
    std::string label;
    serve::ShapeKey key;
  };
  const std::vector<Scenario> scenarios = {
      {"MobileNet-V1/Baseline@64",
       {nets::NetworkId::kMobileNetV1, core::NetworkVariant::kBaseline, 64,
        -1}},
      {"MobileNet-V1/FuSe-Full@32",
       {nets::NetworkId::kMobileNetV1, core::NetworkVariant::kFuseFull, 32,
        -1}},
      {"MobileNet-V2/FuSe-Full@32",
       {nets::NetworkId::kMobileNetV2, core::NetworkVariant::kFuseFull, 32,
        -1}},
  };

  serve::ServeConfig batch1;
  batch1.batch_window = 0;
  batch1.max_batch = 1;
  batch1.queue_capacity = 2 * concurrency;
  serve::ServeConfig batched = batch1;
  batched.batch_window = window;
  batched.max_batch = max_batch;

  util::TablePrinter sat_table({"Scenario", "Svc b1", "Svc b" +
                                std::to_string(max_batch),
                                "Mean batch", "p99 b1", "p99 batched",
                                "Thru b1", "Thru batched", "Speedup"});
  std::vector<SaturationRow> sat_rows;
  double best_speedup = 0.0;
  for (const Scenario& scenario : scenarios) {
    SaturationRow row;
    row.scenario = scenario.label;
    row.service_b1 = pool.service_cycles(scenario.key, 1);
    row.service_bmax = pool.service_cycles(scenario.key, max_batch);
    const LoopLeg leg1 =
        run_leg(pool, batch1, scenario.key, concurrency, total);
    const LoopLeg legb =
        run_leg(pool, batched, scenario.key, concurrency, total);
    row.makespan_b1 = leg1.makespan;
    row.makespan_batched = legb.makespan;
    row.mean_batch = legb.mean_batch;
    row.p99_b1 = leg1.p99;
    row.p99_batched = legb.p99;
    row.throughput_b1 = leg1.throughput;
    row.throughput_batched = legb.throughput;
    row.speedup = leg1.makespan == 0
                      ? 0.0
                      : static_cast<double>(leg1.makespan) /
                            static_cast<double>(legb.makespan);
    best_speedup = std::max(best_speedup, row.speedup);
    sat_table.add_row({row.scenario, util::with_commas(row.service_b1),
                       util::with_commas(row.service_bmax),
                       util::fixed(row.mean_batch, 2),
                       util::with_commas(
                           static_cast<std::uint64_t>(row.p99_b1)),
                       util::with_commas(
                           static_cast<std::uint64_t>(row.p99_batched)),
                       util::fixed(row.throughput_b1, 2),
                       util::fixed(row.throughput_batched, 2),
                       util::fixed(row.speedup, 2) + "x"});
    sat_rows.push_back(std::move(row));
  }
  sat_table.print(std::cout);

  // The PR's headline gate: batching must be worth >= 2x somewhere.
  FUSE_CHECK(best_speedup >= 2.0)
      << "dynamic batching best speedup " << best_speedup
      << "x is below the 2x serving gate";
  std::printf(
      "\nbest scenario: %.2fx batch-1 throughput (gate: >= 2x) — the win\n"
      "is weight traffic streamed once per batch instead of once per "
      "request\n\n",
      best_speedup);

  // --- 2. Open-loop rate sweep: throughput vs tail latency. ---
  const serve::ShapeKey sweep_key = scenarios[1].key;
  const std::uint64_t svc = pool.service_cycles(sweep_key, 1);
  // The sweep's batch window scales with the service time (a fixed small
  // window would never coalesce arrivals that are minutes-of-cycles
  // apart): under overload batches fill, under light load they stay
  // near 1 and requests pay only their own service time.
  const std::uint64_t sweep_window = svc;
  util::TablePrinter sweep_table({"Mean gap", "Offered", "Done", "Shed",
                                  "Mean batch", "p50", "p90", "p99",
                                  "Thru/Mcy"});
  std::vector<SweepRow> sweep_rows;
  // Gaps from ~4x overload (svc/4) to comfortable underload (2*svc).
  const std::vector<std::uint64_t> gaps = {svc / 4, svc / 2, svc,
                                           2 * svc};
  for (const std::uint64_t gap : gaps) {
    serve::ServeConfig config = batched;
    config.batch_window = sweep_window;
    config.queue_capacity = 32;
    serve::ServeEngine engine(config, &pool);
    const std::vector<serve::TraceShape> shapes = {
        serve::TraceShape{sweep_key, 0, 1}};
    const auto trace = serve::make_open_loop_trace(
        static_cast<std::int64_t>(total), gap, shapes, 0xfeedULL);
    serve::replay_trace(engine, trace);
    engine.drain();
    const serve::ServeStats stats = engine.stats();
    SweepRow row;
    row.mean_gap = gap;
    row.offered = stats.submitted;
    row.completed = stats.completed;
    row.rejected = stats.rejected;
    row.mean_batch = stats.mean_batch_size;
    row.p50 = stats.p50_latency_cycles;
    row.p90 = stats.p90_latency_cycles;
    row.p99 = stats.p99_latency_cycles;
    row.throughput = stats.throughput_per_mcycle;
    sweep_table.add_row(
        {util::with_commas(row.mean_gap), std::to_string(row.offered),
         std::to_string(row.completed), std::to_string(row.rejected),
         util::fixed(row.mean_batch, 2),
         util::with_commas(static_cast<std::uint64_t>(row.p50)),
         util::with_commas(static_cast<std::uint64_t>(row.p90)),
         util::with_commas(static_cast<std::uint64_t>(row.p99)),
         util::fixed(row.throughput, 2)});
    sweep_rows.push_back(row);
  }
  std::printf("Open-loop rate sweep (%s, window=%llu, cap=%d,\n"
              "queue capacity 32; gap is the mean inter-arrival time):\n",
              scenarios[1].label.c_str(),
              static_cast<unsigned long long>(sweep_window), max_batch);
  sweep_table.print(std::cout);

  // --- 3. Multi-tenant tensor-mode mix through the worker pool. ---
  serve::ModelPool tenant_pool(systolic::square_array(8), mem);
  serve::ShapeKey tenant_a;
  tenant_a.custom = tenant_pool.register_custom(tenant_chain_a());
  serve::ShapeKey tenant_b;
  tenant_b.custom = tenant_pool.register_custom(tenant_chain_b());
  serve::ServeConfig tenant_config;
  tenant_config.mode = serve::ExecMode::kTensor;
  tenant_config.batch_window = 4000;
  tenant_config.max_batch = 4;
  tenant_config.queue_capacity = 16;
  tenant_config.num_arrays = 2;
  tenant_config.workers = workers;
  serve::ServeEngine tenant_engine(tenant_config, &tenant_pool);
  const std::vector<serve::TraceShape> tenant_shapes = {
      serve::TraceShape{tenant_a, 0, 2},
      serve::TraceShape{tenant_b, 0, 1},
  };
  const auto tenant_trace =
      serve::make_open_loop_trace(64, 2000, tenant_shapes, 0x7e4a47ULL);
  serve::replay_trace(tenant_engine, tenant_trace);
  tenant_engine.drain();
  const serve::ServeStats tenant_stats = tenant_engine.stats();
  TenantRow tenant_row;
  tenant_row.mix = "tenant-a:2 tenant-b:1";
  tenant_row.offered = tenant_stats.submitted;
  tenant_row.completed = tenant_stats.completed;
  tenant_row.rejected = tenant_stats.rejected;
  tenant_row.batches = tenant_stats.batches;
  tenant_row.mean_batch = tenant_stats.mean_batch_size;
  tenant_row.p99 = tenant_stats.p99_latency_cycles;
  tenant_row.fingerprint = response_fingerprint(tenant_engine);
  std::printf(
      "\nMulti-tenant tensor mode (2 chains, 2 arrays, %d workers): %llu/"
      "%llu completed in %llu batches (mean %.2f), p99 %llu cycles\n"
      "response fingerprint: %s (byte-identical for any --workers)\n",
      workers, static_cast<unsigned long long>(tenant_row.completed),
      static_cast<unsigned long long>(tenant_row.offered),
      static_cast<unsigned long long>(tenant_row.batches),
      tenant_row.mean_batch,
      static_cast<unsigned long long>(tenant_row.p99),
      tenant_row.fingerprint.c_str());

  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    write_json(json_path, sat_rows, sweep_rows, {tenant_row}, cfg,
               max_batch, window);
  }
  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_serve.csv");
    csv.write_header({"experiment", "label", "offered", "completed",
                      "rejected", "mean_batch", "p99_cycles",
                      "throughput_per_mcycle", "speedup_vs_b1"});
    for (const SaturationRow& r : sat_rows) {
      csv.write_row({"saturation", r.scenario, std::to_string(total),
                     std::to_string(total), "0",
                     util::fixed(r.mean_batch, 4),
                     util::fixed(r.p99_batched, 1),
                     util::fixed(r.throughput_batched, 4),
                     util::fixed(r.speedup, 4)});
    }
    for (const SweepRow& r : sweep_rows) {
      csv.write_row({"rate_sweep", "gap=" + std::to_string(r.mean_gap),
                     std::to_string(r.offered), std::to_string(r.completed),
                     std::to_string(r.rejected),
                     util::fixed(r.mean_batch, 4), util::fixed(r.p99, 1),
                     util::fixed(r.throughput, 4), ""});
    }
    csv.write_row({"multi_tenant", tenant_row.mix,
                   std::to_string(tenant_row.offered),
                   std::to_string(tenant_row.completed),
                   std::to_string(tenant_row.rejected),
                   util::fixed(tenant_row.mean_batch, 4),
                   util::fixed(tenant_row.p99, 1), "", ""});
    std::printf("wrote bench_serve.csv\n");
  }
  return 0;
}
