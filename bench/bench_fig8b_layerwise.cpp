// Reproduces Fig. 8(b): layer-wise speedup of the FuSe-Full transform for
// MobileNet-V2 on a 64x64 array. Paper range: 2.48x-9.38x, with initial
// (large-feature-map) layers gaining the most.
//
// Usage: bench_fig8b_layerwise [--size=64] [--net=v2] [--variant=full]
//        [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/report.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

namespace {

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_string("net", "v2", "network: v1|v2|v3s|v3l|mnas");
  flags.add_string("variant", "full", "replacement variant: full|half");
  flags.add_bool("csv", false, "also write bench_fig8b.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const nets::NetworkId id = nets::parse_network_flag(flags.get_string("net"));
  const core::FuseMode mode = flags.get_string("variant") == "half"
                                  ? core::FuseMode::kHalf
                                  : core::FuseMode::kFull;
  std::printf(
      "Fig. 8(b) reproduction — per-depthwise-block speedup, %s "
      "FuSe-%s on %s (paper: 2.48x-9.38x for V2 Full)\n\n",
      nets::network_name(id).c_str(),
      mode == core::FuseMode::kHalf ? "Half" : "Full",
      cfg.to_string().c_str());

  const auto slots = sched::layerwise_speedup(id, mode, cfg);
  util::TablePrinter table({"Slot", "Layer", "Input", "Channels",
                            "Base cycles", "FuSe cycles", "Speedup"});
  double min_speedup = 1e30, max_speedup = 0.0;
  for (const auto& s : slots) {
    min_speedup = std::min(min_speedup, s.speedup);
    max_speedup = std::max(max_speedup, s.speedup);
    table.add_row({std::to_string(s.slot), s.name,
                   std::to_string(s.in_h) + "x" + std::to_string(s.in_w),
                   std::to_string(s.channels),
                   util::with_commas(s.baseline_cycles),
                   util::with_commas(s.fused_cycles),
                   util::fixed(s.speedup, 2) + "x"});
  }
  table.print(std::cout);
  std::printf("\nrange: %.2fx - %.2fx (paper: 2.48x - 9.38x)\n",
              min_speedup, max_speedup);

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_fig8b.csv");
    csv.write_header({"slot", "layer", "in_h", "channels", "base_cycles",
                      "fuse_cycles", "speedup"});
    for (const auto& s : slots) {
      csv.write_row({std::to_string(s.slot), s.name, std::to_string(s.in_h),
                     std::to_string(s.channels),
                     std::to_string(s.baseline_cycles),
                     std::to_string(s.fused_cycles),
                     util::fixed(s.speedup, 3)});
    }
    std::printf("wrote bench_fig8b.csv\n");
  }
  return 0;
}
