// Reproduces Fig. 8(c): distribution of latency across operator classes
// for baseline and FuSe networks. The paper's qualitative claim: baseline
// latency is dominated by depthwise convolutions; after the transform the
// distribution shifts to pointwise convolutions, with the FuSe operators
// themselves a small fraction (4-11%).
//
// Usage: bench_fig8c_opdist [--size=64] [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;
using sched::OperatorClass;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_fig8c.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  std::printf(
      "Fig. 8(c) reproduction — operator latency distribution on %s\n"
      "(note: Table I's speedups imply a higher baseline depthwise share "
      "than Fig. 8(c)'s 30-50%% label; see EXPERIMENTS.md)\n\n",
      cfg.to_string().c_str());

  const OperatorClass classes[] = {
      OperatorClass::kStandardConv, OperatorClass::kDepthwise,
      OperatorClass::kPointwise, OperatorClass::kFuse,
      OperatorClass::kFcAndSe};

  util::TablePrinter table({"Network", "Variant", "conv", "depthwise",
                            "pointwise", "fuse", "fc+se"});
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id : nets::paper_networks()) {
    for (core::NetworkVariant variant :
         {core::NetworkVariant::kBaseline, core::NetworkVariant::kFuseFull,
          core::NetworkVariant::kFuseHalf}) {
      const sched::VariantBuild build =
          sched::build_variant(id, variant, cfg);
      const sched::OperatorBreakdown b =
          sched::operator_breakdown(build.model, cfg);
      std::vector<std::string> row = {
          nets::network_name(id), core::network_variant_name(variant)};
      std::vector<std::string> csv_row = row;
      for (OperatorClass cls : classes) {
        const std::string pct =
            util::fixed(100.0 * b.fraction(cls), 1) + "%";
        row.push_back(pct);
        csv_row.push_back(util::fixed(b.fraction(cls), 4));
      }
      table.add_row(row);
      csv_rows.push_back(csv_row);
    }
    table.add_separator();
  }
  table.print(std::cout);

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_fig8c.csv");
    csv.write_header({"network", "variant", "conv", "depthwise",
                      "pointwise", "fuse", "fc_se"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("\nwrote bench_fig8c.csv\n");
  }
  return 0;
}
