// Extension: energy per inference (the quantity edge accelerators
// ultimately optimize, motivating the paper's performance-per-watt
// framing). Decomposes each network/variant into MAC, idle, SRAM and DRAM
// energy under the 45 nm model. The FuSe variants' energy win comes mostly
// from the idle term — the baseline's under-utilized array clocks all
// S*S PEs while one column computes the depthwise layers.
//
// Usage: bench_energy [--size=64] [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/latency.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_energy.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const systolic::MemoryConfig mem;
  const hw::EnergyModel energy;

  std::printf(
      "Energy per inference (45 nm model, FP16, %s array, %g B/cycle "
      "DRAM)\n\n",
      cfg.to_string().c_str(), mem.dram_bytes_per_cycle);

  util::TablePrinter table({"Network", "Variant", "MAC (uJ)", "idle (uJ)",
                            "SRAM (uJ)", "DRAM (uJ)", "total (uJ)",
                            "vs base"});
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id : nets::paper_networks()) {
    double base_total = 0.0;
    for (core::NetworkVariant variant :
         {core::NetworkVariant::kBaseline, core::NetworkVariant::kFuseFull,
          core::NetworkVariant::kFuseHalf}) {
      const sched::VariantBuild build =
          sched::build_variant(id, variant, cfg);
      const hw::EnergyReport report =
          sched::network_energy(build.model, cfg, mem, energy);
      if (variant == core::NetworkVariant::kBaseline) {
        base_total = report.total_nj();
      }
      table.add_row(
          {nets::network_name(id), core::network_variant_name(variant),
           util::fixed(report.mac_nj / 1e3, 1),
           util::fixed(report.idle_nj / 1e3, 1),
           util::fixed(report.sram_nj / 1e3, 1),
           util::fixed(report.dram_nj / 1e3, 1),
           util::fixed(report.total_nj() / 1e3, 1),
           util::fixed(base_total / report.total_nj(), 2) + "x"});
      csv_rows.push_back(
          {nets::network_name(id), core::network_variant_name(variant),
           util::fixed(report.mac_nj, 1), util::fixed(report.idle_nj, 1),
           util::fixed(report.sram_nj, 1), util::fixed(report.dram_nj, 1),
           util::fixed(report.total_nj(), 1)});
    }
    table.add_separator();
  }
  table.print(std::cout);

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_energy.csv");
    csv.write_header({"network", "variant", "mac_nj", "idle_nj", "sram_nj",
                      "dram_nj", "total_nj"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("\nwrote bench_energy.csv\n");
  }
  return 0;
}
