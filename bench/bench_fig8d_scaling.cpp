// Reproduces Fig. 8(d): the ablation of FuSe speedup vs systolic-array
// size. Paper claims: speedup increases with array size, and the larger,
// older MobileNet-V1 gains more on big arrays than MobileNet-V3-Small.
//
// Usage: bench_fig8d_scaling [--variant=half] [--csv]
#include <cstdio>
#include <iostream>

#include "sched/report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("variant", "half", "full|half");
  flags.add_bool("csv", false, "also write bench_fig8d.csv");
  flags.parse(argc, argv);

  const core::NetworkVariant variant =
      flags.get_string("variant") == "full"
          ? core::NetworkVariant::kFuseFull
          : core::NetworkVariant::kFuseHalf;
  const std::vector<std::int64_t> sizes = {8, 16, 32, 64, 128};

  std::printf(
      "Fig. 8(d) reproduction — %s speedup vs array size "
      "(expect: monotone growth; V1 > V3-Small at 128)\n\n",
      core::network_variant_name(variant).c_str());

  std::vector<std::string> header = {"Network"};
  for (std::int64_t s : sizes) {
    header.push_back(std::to_string(s) + "x" + std::to_string(s));
  }
  util::TablePrinter table(header);
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id : nets::paper_networks()) {
    const auto points = sched::scaling_sweep(id, variant, sizes);
    std::vector<std::string> row = {nets::network_name(id)};
    std::vector<std::string> csv_row = row;
    for (const auto& p : points) {
      row.push_back(util::fixed(p.speedup, 2) + "x");
      csv_row.push_back(util::fixed(p.speedup, 3));
    }
    table.add_row(row);
    csv_rows.push_back(csv_row);
  }
  table.print(std::cout);

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_fig8d.csv");
    std::vector<std::string> csv_header = {"network"};
    for (std::int64_t s : sizes) {
      csv_header.push_back("s" + std::to_string(s));
    }
    csv.write_header(csv_header);
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("\nwrote bench_fig8d.csv\n");
  }
  return 0;
}
