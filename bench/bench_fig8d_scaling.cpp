// Reproduces Fig. 8(d): the ablation of FuSe speedup vs systolic-array
// size. Paper claims: speedup increases with array size, and the larger,
// older MobileNet-V1 gains more on big arrays than MobileNet-V3-Small.
//
// Usage: bench_fig8d_scaling [--variant=half] [--csv] [--threads=N]
//        [--no-cache]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/sweep.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("variant", "half", "full|half");
  flags.add_bool("csv", false, "also write bench_fig8d.csv");
  bench::SweepHarness harness(flags);
  flags.parse(argc, argv);

  const core::NetworkVariant variant =
      flags.get_string("variant") == "full"
          ? core::NetworkVariant::kFuseFull
          : core::NetworkVariant::kFuseHalf;
  const std::vector<std::int64_t> sizes = {8, 16, 32, 64, 128};

  std::printf(
      "Fig. 8(d) reproduction — %s speedup vs array size "
      "(expect: monotone growth; V1 > V3-Small at 128)\n\n",
      core::network_variant_name(variant).c_str());

  std::vector<std::string> header = {"Network"};
  for (std::int64_t s : sizes) {
    header.push_back(std::to_string(s) + "x" + std::to_string(s));
  }
  const auto networks = nets::paper_networks();
  std::vector<std::vector<sched::ScalingPoint>> sweeps(networks.size());
  sched::SweepEngine& engine = harness.engine(flags);
  // One task per (network, size) cell: the engine parallelizes the sizes
  // inside scaling_sweep, and the networks fan across the outer loop.
  engine.pool().parallel_for(
      static_cast<std::int64_t>(networks.size()), [&](std::int64_t i) {
        const std::size_t n = static_cast<std::size_t>(i);
        sweeps[n] = engine.scaling_sweep(networks[n], variant, sizes);
      });
  harness.stop();

  util::TablePrinter table(header);
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t n = 0; n < networks.size(); ++n) {
    std::vector<std::string> row = {nets::network_name(networks[n])};
    std::vector<std::string> csv_row = row;
    for (const auto& p : sweeps[n]) {
      row.push_back(util::fixed(p.speedup, 2) + "x");
      csv_row.push_back(util::fixed(p.speedup, 3));
    }
    table.add_row(row);
    csv_rows.push_back(csv_row);
  }
  table.print(std::cout);
  harness.print_footer();

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_fig8d.csv");
    std::vector<std::string> csv_header = {"network"};
    for (std::int64_t s : sizes) {
      csv_header.push_back("s" + std::to_string(s));
    }
    csv.write_header(csv_header);
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("\nwrote bench_fig8d.csv\n");
  }
  return 0;
}
