// Extension: the MobileNet papers' second knob — input resolution. Sweeps
// the square input size for V1/V2 and reports baseline latency and the
// FuSe speedups. The result: the speedup is essentially flat across
// resolutions (both the depthwise pathology and the FuSe win scale with
// the feature-map area), so the operator substitution is robust to this
// deployment knob too.
//
// Usage: bench_resolution [--size=64] [--csv] [--threads=N] [--no-cache]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/sweep.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_resolution.csv");
  bench::SweepHarness harness(flags);
  flags.parse(argc, argv);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const std::vector<nets::NetworkId> networks = {
      nets::NetworkId::kMobileNetV1, nets::NetworkId::kMobileNetV2};
  const std::vector<std::int64_t> resolutions = {128, 160, 192, 224};

  std::printf(
      "Input-resolution sweep on %s — FuSe speedups across the second "
      "MobileNet knob\n\n",
      cfg.to_string().c_str());

  struct Point {
    std::uint64_t macs = 0;
    std::uint64_t base_cycles = 0;
    double full_speedup = 0.0;
    double half_speedup = 0.0;
  };
  const std::int64_t cells =
      static_cast<std::int64_t>(networks.size() * resolutions.size());
  std::vector<Point> points(static_cast<std::size_t>(cells));
  sched::SweepEngine& engine = harness.engine(flags);
  engine.pool().parallel_for(cells, [&](std::int64_t flat) {
    const std::size_t n =
        static_cast<std::size_t>(flat) / resolutions.size();
    const std::int64_t res =
        resolutions[static_cast<std::size_t>(flat) % resolutions.size()];
    const nets::NetworkId id = networks[n];
    const int slots = nets::num_fuse_slots(id);
    const auto baseline = nets::build_network_scaled(id, 1.0, {}, res);
    const auto full = nets::build_network_scaled(
        id, 1.0, core::uniform_modes(slots, core::FuseMode::kFull), res);
    const auto half = nets::build_network_scaled(
        id, 1.0, core::uniform_modes(slots, core::FuseMode::kHalf), res);
    Point& p = points[static_cast<std::size_t>(flat)];
    p.macs = baseline.total_macs();
    p.base_cycles = engine.network_cycles(baseline, cfg);
    p.full_speedup = static_cast<double>(p.base_cycles) /
                     static_cast<double>(engine.network_cycles(full, cfg));
    p.half_speedup = static_cast<double>(p.base_cycles) /
                     static_cast<double>(engine.network_cycles(half, cfg));
  });
  harness.stop();

  util::TablePrinter table({"Network", "Input", "MACs (M)",
                            "Base cycles", "Full speedup", "Half speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t n = 0; n < networks.size(); ++n) {
    const nets::NetworkId id = networks[n];
    for (std::size_t r = 0; r < resolutions.size(); ++r) {
      const std::int64_t res = resolutions[r];
      const Point& p = points[n * resolutions.size() + r];
      table.add_row(
          {nets::network_name(id),
           std::to_string(res) + "x" + std::to_string(res),
           util::fixed(static_cast<double>(p.macs) / 1e6, 0),
           util::with_commas(p.base_cycles),
           util::fixed(p.full_speedup, 2) + "x",
           util::fixed(p.half_speedup, 2) + "x"});
      csv_rows.push_back({nets::network_name(id), std::to_string(res),
                          std::to_string(p.macs),
                          std::to_string(p.base_cycles),
                          util::fixed(p.full_speedup, 3),
                          util::fixed(p.half_speedup, 3)});
    }
    table.add_separator();
  }
  table.print(std::cout);
  harness.print_footer();

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_resolution.csv");
    csv.write_header({"network", "resolution", "macs", "base_cycles",
                      "full_speedup", "half_speedup"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("\nwrote bench_resolution.csv\n");
  }
  return 0;
}
