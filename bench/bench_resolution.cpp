// Extension: the MobileNet papers' second knob — input resolution. Sweeps
// the square input size for V1/V2 and reports baseline latency and the
// FuSe speedups. The result: the speedup is essentially flat across
// resolutions (both the depthwise pathology and the FuSe win scale with
// the feature-map area), so the operator substitution is robust to this
// deployment knob too.
//
// Usage: bench_resolution [--size=64] [--csv]
#include <cstdio>
#include <iostream>

#include "sched/latency.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_resolution.csv");
  flags.parse(argc, argv);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const std::int64_t resolutions[] = {128, 160, 192, 224};

  std::printf(
      "Input-resolution sweep on %s — FuSe speedups across the second "
      "MobileNet knob\n\n",
      cfg.to_string().c_str());

  util::TablePrinter table({"Network", "Input", "MACs (M)",
                            "Base cycles", "Full speedup", "Half speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id :
       {nets::NetworkId::kMobileNetV1, nets::NetworkId::kMobileNetV2}) {
    const int slots = nets::num_fuse_slots(id);
    for (std::int64_t res : resolutions) {
      const auto baseline = nets::build_network_scaled(id, 1.0, {}, res);
      const auto full = nets::build_network_scaled(
          id, 1.0, core::uniform_modes(slots, core::FuseMode::kFull), res);
      const auto half = nets::build_network_scaled(
          id, 1.0, core::uniform_modes(slots, core::FuseMode::kHalf), res);
      const std::uint64_t base_cycles =
          sched::network_latency(baseline, cfg).total_cycles;
      const double full_speedup =
          static_cast<double>(base_cycles) /
          static_cast<double>(
              sched::network_latency(full, cfg).total_cycles);
      const double half_speedup =
          static_cast<double>(base_cycles) /
          static_cast<double>(
              sched::network_latency(half, cfg).total_cycles);
      table.add_row(
          {nets::network_name(id),
           std::to_string(res) + "x" + std::to_string(res),
           util::fixed(static_cast<double>(baseline.total_macs()) / 1e6, 0),
           util::with_commas(base_cycles),
           util::fixed(full_speedup, 2) + "x",
           util::fixed(half_speedup, 2) + "x"});
      csv_rows.push_back({nets::network_name(id), std::to_string(res),
                          std::to_string(baseline.total_macs()),
                          std::to_string(base_cycles),
                          util::fixed(full_speedup, 3),
                          util::fixed(half_speedup, 3)});
    }
    table.add_separator();
  }
  table.print(std::cout);

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_resolution.csv");
    csv.write_header({"network", "resolution", "macs", "base_cycles",
                      "full_speedup", "half_speedup"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("\nwrote bench_resolution.csv\n");
  }
  return 0;
}
