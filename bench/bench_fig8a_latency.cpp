// Reproduces Fig. 8(a): absolute latency (cycles, and milliseconds at the
// configured clock) of every network/variant on a 64x64 array.
//
// Usage: bench_fig8a_latency [--size=64] [--freq-mhz=700] [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_double("freq-mhz", 700.0, "clock for cycle->time conversion");
  flags.add_bool("csv", false, "also write bench_fig8a.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  auto cfg = systolic::square_array(flags.get_int("size"));
  cfg.freq_mhz = flags.get_double("freq-mhz");
  std::printf("Fig. 8(a) reproduction — latency on a %s array @ %.0f MHz\n\n",
              cfg.to_string().c_str(), cfg.freq_mhz);

  util::TablePrinter table(
      {"Network", "Variant", "Cycles", "Latency (ms)", "Utilization"});
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id : nets::paper_networks()) {
    for (core::NetworkVariant variant : core::all_network_variants()) {
      const sched::VariantBuild build = sched::build_variant(id, variant, cfg);
      const sched::NetworkLatency lat =
          sched::network_latency(build.model, cfg);
      const double ms = static_cast<double>(lat.total_cycles) /
                        (cfg.freq_mhz * 1e3);
      table.add_row({nets::network_name(id),
                     core::network_variant_name(variant),
                     util::with_commas(lat.total_cycles),
                     util::fixed(ms, 3),
                     util::fixed(100.0 * lat.utilization(cfg), 1) + "%"});
      csv_rows.push_back({nets::network_name(id),
                          core::network_variant_name(variant),
                          std::to_string(lat.total_cycles),
                          util::fixed(ms, 4)});
    }
    table.add_separator();
  }
  table.print(std::cout);

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_fig8a.csv");
    csv.write_header({"network", "variant", "cycles", "latency_ms"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("\nwrote bench_fig8a.csv\n");
  }
  return 0;
}
