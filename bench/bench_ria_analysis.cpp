// Reproduces the paper's Section III formal analysis as a report: which
// algorithms are Regular Iterative Algorithms (and hence candidates for
// systolic execution), their dependence vectors, and a found space-time
// mapping.
//
// Usage: bench_ria_analysis
#include <cstdio>

#include "ria/algorithms.hpp"
#include "ria/schedule.hpp"

using namespace fuse::ria;

namespace {

void report(const AlgorithmSpec& spec) {
  const RiaAnalysis analysis = analyze(spec);
  std::printf("%s", analysis.report(spec).c_str());
  if (analysis.is_ria) {
    const auto schedule =
        find_schedule(analysis, static_cast<int>(spec.index_names.size()));
    if (schedule.has_value()) {
      std::printf("space-time mapping: %s\n",
                  schedule->to_string(spec.index_names).c_str());
    } else {
      std::printf("space-time mapping: none found (not systolic)\n");
    }
  }
  std::printf("systolic algorithm: %s\n\n",
              is_systolic_algorithm(spec) ? "YES" : "NO");
}

}  // namespace

int main() {
  std::printf(
      "Section III reproduction — RIA analysis (Rao & Kailath "
      "formalism)\n\n");
  report(matmul_spec());              // Fig. 1: systolic
  report(conv1d_spec(3));             // Fig. 7(a): systolic
  report(conv2d_naive_spec(3));       // Fig. 2(b): NOT an RIA
  report(depthwise_conv_spec(3));     // hence depthwise is not systolic
  report(conv2d_im2col_spec());       // Fig. 2(c): im2col restores RIA
  report(pointwise_conv_spec());      // §IV-B: the other half of FuSeConv

  // One RIA, three accelerators: each unit projection of the matmul
  // iteration space is one of the classic dataflows.
  std::printf("space-time projections of the matmul RIA:\n");
  const AlgorithmSpec spec = matmul_spec();
  const RiaAnalysis analysis = analyze(spec);
  bool printed[3] = {false, false, false};
  for (const SystolicSchedule& s : enumerate_schedules(analysis, 3, 1)) {
    int axis = -1;
    for (std::size_t d = 0; d < s.projection.size(); ++d) {
      if (s.projection[d] == 1) {
        axis = static_cast<int>(d);
      }
    }
    if (axis >= 0 && !printed[axis]) {
      printed[axis] = true;
      std::printf("  project out %s -> %s\n",
                  spec.index_names[static_cast<std::size_t>(axis)].c_str(),
                  stationary_operand(s).c_str());
    }
  }

  std::printf(
      "\nconclusion (paper §III): 2-D convolution cannot be written as an "
      "RIA;\nim2col restores the property but maps each depthwise channel "
      "to a single\narray column; FuSeConv's 1-D convolutions are systolic "
      "and fill the array.\n");
  return 0;
}
