// Ablation: array aspect ratio at a fixed PE budget. The broadcast
// dataflow maps one 1-D convolution per array ROW, so FuSe-transformed
// networks should prefer tall arrays (more parallel lines), while the
// baseline's depthwise single-column mapping also parallelizes over rows
// (output positions) — the question is where each side's optimum falls
// and whether the speedup survives square-array-centric design.
//
// Usage: bench_ablation_aspect [--pes=4096] [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/latency.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("pes", 4096, "total PE budget (rows*cols)");
  flags.add_bool("csv", false, "also write bench_ablation_aspect.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const std::int64_t pes = flags.get_int("pes");
  const std::int64_t rows_options[] = {16, 32, 64, 128, 256};

  std::printf(
      "Ablation: array aspect ratio at a fixed %lld-PE budget "
      "(MobileNet-V2)\n\n",
      static_cast<long long>(pes));

  util::TablePrinter table({"Array", "baseline cycles", "FuSe-Half cycles",
                            "speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  const auto baseline = nets::build_network(nets::NetworkId::kMobileNetV2);
  const auto fused = nets::build_network(
      nets::NetworkId::kMobileNetV2,
      core::uniform_modes(17, core::FuseMode::kHalf));
  for (std::int64_t rows : rows_options) {
    if (pes % rows != 0) {
      continue;
    }
    systolic::ArrayConfig cfg;
    cfg.rows = rows;
    cfg.cols = pes / rows;
    const std::uint64_t base_cycles =
        sched::network_latency(baseline, cfg).total_cycles;
    const std::uint64_t fuse_cycles =
        sched::network_latency(fused, cfg).total_cycles;
    table.add_row({std::to_string(cfg.rows) + "x" + std::to_string(cfg.cols),
                   util::with_commas(base_cycles),
                   util::with_commas(fuse_cycles),
                   util::fixed(static_cast<double>(base_cycles) /
                                   static_cast<double>(fuse_cycles),
                               2) + "x"});
    csv_rows.push_back({std::to_string(cfg.rows),
                        std::to_string(cfg.cols),
                        std::to_string(base_cycles),
                        std::to_string(fuse_cycles)});
  }
  table.print(std::cout);
  std::printf(
      "\ntall arrays favour both mappings' row-parallelism, but the FuSe "
      "variant keeps a\nlarge speedup at every aspect ratio — the result "
      "is not an artifact of square\narrays.\n");

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_ablation_aspect.csv");
    csv.write_header({"rows", "cols", "baseline_cycles", "fuse_cycles"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("wrote bench_ablation_aspect.csv\n");
  }
  return 0;
}
