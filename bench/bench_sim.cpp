// Simulator engine benchmark: reference (per-cycle PE sweep) vs fast
// (wavefront interval engine) vs fast_t4 (fold-parallel, 4 threads) on
// MobileNet-V2 layer geometries at the paper's Table-1 array (64x64,
// output-stationary). Every layer is lowered through the array-mapping IR
// and simulated with run_plan, exactly the path simulate_network /
// profile_network pay — so the speedups here are the end-to-end win.
//
// Before timing, every layer's fast result is checked bit-exact against
// the reference (equal cycles/folds/MACs, memcmp-identical pe_busy); the
// bench aborts on any mismatch, making each run a standing verification
// of the docs/simulator.md contract at full optimization.
//
// Usage: bench_sim [--json=<path>]
//   --json writes the machine-readable rows consumed by
//   results/BENCH_sim.json (tools/regenerate_results.sh).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "systolic/mapping.hpp"
#include "systolic/sim.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace fuse;

namespace {

struct Case {
  const char* name;
  nn::LayerDesc layer;
};

/// Representative MobileNet-V2 layers (ImageNet geometry): the stem, a
/// wide depthwise stage, the 14x14 bottleneck expansion/projection
/// pointwise pair, the FuSe row branch that replaces the depthwise, and
/// the classifier. Together they cover im2col, depthwise-column,
/// broadcast-line, and FC-shaped plans.
std::vector<Case> mobilenet_v2_cases() {
  return {
      {"stem_conv3x3_s2", nn::make_conv("stem", 3, 224, 224, 32, 3, 2, 1)},
      {"dw3x3_144_56x56", nn::make_depthwise("dw", 144, 56, 56, 3, 1, 1)},
      {"pw_expand_96_576", nn::make_pointwise("pw_exp", 96, 14, 14, 576)},
      {"pw_project_576_96", nn::make_pointwise("pw_proj", 576, 14, 14, 96)},
      {"fuse_row_96_14x14", nn::make_fuse_row("fuse", 96, 14, 14, 3, 1, 1)},
      {"fc_1280_1000", nn::make_fully_connected("fc", 1280, 1000)},
  };
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Wall ms per run_plan call: repeats until `min_ms` elapsed (at least
/// once), so the fast engines average over enough reps while the slow
/// reference pays a single pass.
double time_run_plan(systolic::SystolicArraySim& sim,
                     const systolic::MappingPlan& plan, double min_ms) {
  int reps = 0;
  const auto t0 = std::chrono::steady_clock::now();
  do {
    sim.run_plan(plan);
    ++reps;
  } while (elapsed_ms(t0) < min_ms && reps < 1000);
  return elapsed_ms(t0) / reps;
}

void check_bit_exact(const systolic::SimResult& fast,
                     const systolic::SimResult& reference,
                     const char* name) {
  FUSE_CHECK(fast.cycles == reference.cycles &&
             fast.folds == reference.folds &&
             fast.mac_ops == reference.mac_ops)
      << name << ": fast/reference counters diverge";
  FUSE_CHECK(fast.pe_busy.shape() == reference.pe_busy.shape() &&
             std::memcmp(fast.pe_busy.data(), reference.pe_busy.data(),
                         static_cast<std::size_t>(
                             fast.pe_busy.num_elements()) *
                             sizeof(float)) == 0)
      << name << ": fast/reference pe_busy bits diverge";
}

struct Row {
  std::string layer;
  std::uint64_t cycles = 0;
  std::uint64_t mac_ops = 0;
  double reference_ms = 0.0;
  double fast_ms = 0.0;
  double fast_t4_ms = 0.0;
};

void write_json(const std::string& path, const std::vector<Row>& rows,
                double total_ref, double total_fast, double total_t4) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FUSE_CHECK(f != nullptr) << "cannot write " << path;
  std::fprintf(f,
               "{\n  \"bench\": \"bench_sim\",\n  \"array\": \"64x64\",\n"
               "  \"network\": \"mobilenet_v2_layer_geometries\",\n"
               "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"layer\": \"%s\", \"cycles\": %llu, \"mac_ops\": %llu, "
        "\"reference_ms\": %.4f, \"fast_ms\": %.4f, \"fast_t4_ms\": %.4f, "
        "\"speedup_fast\": %.2f, \"speedup_fast_t4\": %.2f}%s\n",
        r.layer.c_str(), static_cast<unsigned long long>(r.cycles),
        static_cast<unsigned long long>(r.mac_ops), r.reference_ms,
        r.fast_ms, r.fast_t4_ms, r.reference_ms / r.fast_ms,
        r.reference_ms / r.fast_t4_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"total\": {\"reference_ms\": %.4f, \"fast_ms\": "
               "%.4f, \"fast_t4_ms\": %.4f, \"speedup_single_thread\": "
               "%.2f, \"speedup_t4\": %.2f}\n}\n",
               total_ref, total_fast, total_t4, total_ref / total_fast,
               total_ref / total_t4);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("json", "", "write machine-readable rows here");
  flags.parse(argc, argv);

  systolic::ArrayConfig cfg = systolic::square_array(64);
  cfg.overlap_fold_drain = false;
  systolic::SystolicArraySim sim(cfg);

  std::printf(
      "simulator engines on %s, MobileNet-V2 layer geometries\n"
      "(reference = per-cycle PE sweep; fast = wavefront intervals, 1 "
      "thread; fast_t4 = 4 threads)\n\n"
      "%-20s %12s %12s %10s %10s %10s %8s %8s\n",
      cfg.to_string().c_str(), "layer", "cycles", "mac_ops", "ref ms",
      "fast ms", "t4 ms", "x1", "x4");

  std::vector<Row> rows;
  double total_ref = 0.0;
  double total_fast = 0.0;
  double total_t4 = 0.0;
  for (const Case& c : mobilenet_v2_cases()) {
    const systolic::MappingPlan plan = systolic::lower(c.layer, cfg);

    systolic::set_sim_threads(1);
    systolic::set_sim_backend(systolic::SimBackend::kReference);
    const systolic::SimResult reference = sim.run_plan(plan);
    systolic::set_sim_backend(systolic::SimBackend::kFast);
    const systolic::SimResult fast = sim.run_plan(plan);
    check_bit_exact(fast, reference, c.name);

    Row row;
    row.layer = c.name;
    row.cycles = reference.cycles;
    row.mac_ops = reference.mac_ops;
    systolic::set_sim_backend(systolic::SimBackend::kReference);
    row.reference_ms = time_run_plan(sim, plan, /*min_ms=*/0.0);
    systolic::set_sim_backend(systolic::SimBackend::kFast);
    row.fast_ms = time_run_plan(sim, plan, /*min_ms=*/50.0);
    systolic::set_sim_threads(4);
    row.fast_t4_ms = time_run_plan(sim, plan, /*min_ms=*/50.0);
    systolic::set_sim_threads(1);

    total_ref += row.reference_ms;
    total_fast += row.fast_ms;
    total_t4 += row.fast_t4_ms;
    std::printf("%-20s %12llu %12llu %10.2f %10.3f %10.3f %7.1fx %7.1fx\n",
                row.layer.c_str(),
                static_cast<unsigned long long>(row.cycles),
                static_cast<unsigned long long>(row.mac_ops),
                row.reference_ms, row.fast_ms, row.fast_t4_ms,
                row.reference_ms / row.fast_ms,
                row.reference_ms / row.fast_t4_ms);
    rows.push_back(row);
  }

  std::printf(
      "\ntotal: reference %.1f ms, fast %.1f ms (%.1fx), fast_t4 %.1f ms "
      "(%.1fx); all layers bit-exact across engines\n",
      total_ref, total_fast, total_ref / total_fast, total_t4,
      total_ref / total_t4);

  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    write_json(json_path, rows, total_ref, total_fast, total_t4);
  }
  return 0;
}
