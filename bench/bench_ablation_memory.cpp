// Ablation: when does the paper's compute-bound assumption (§V-A3) hold?
// Sweeps DRAM bandwidth and reports the FuSe-Half speedup under the
// roofline model max(compute, memory) per layer. At generous bandwidth the
// speedup equals the paper's compute-only number; as bandwidth shrinks the
// networks go memory-bound and the advantage compresses (the FuSe variant
// moves similar bytes but far fewer compute cycles, so memory becomes its
// ceiling first).
//
// Usage: bench_ablation_memory [--size=64] [--net=v2] [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/latency.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_ablation_memory.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const double bandwidths[] = {1, 2, 4, 8, 16, 32, 64, 1e9};

  std::printf(
      "Ablation: FuSe-Half roofline speedup vs DRAM bandwidth "
      "(bytes/cycle, FP16 operands, %s array)\n"
      "rightmost column (inf) reproduces the paper's compute-bound "
      "assumption\n\n",
      cfg.to_string().c_str());

  util::TablePrinter table({"Network", "1", "2", "4", "8", "16", "32",
                            "64", "inf"});
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id : nets::paper_networks()) {
    std::vector<std::string> row = {nets::network_name(id)};
    std::vector<std::string> csv_row = row;
    for (double bw : bandwidths) {
      systolic::MemoryConfig mem;
      mem.dram_bytes_per_cycle = bw;
      const double speedup = sched::roofline_speedup(
          id, core::NetworkVariant::kFuseHalf, cfg, mem);
      row.push_back(util::fixed(speedup, 2) + "x");
      csv_row.push_back(util::fixed(speedup, 3));
    }
    table.add_row(row);
    csv_rows.push_back(csv_row);
  }
  table.print(std::cout);

  // Where does the baseline itself become memory bound?
  systolic::MemoryConfig mem;  // default 16 B/cycle
  const auto v2 = nets::build_network(nets::NetworkId::kMobileNetV2);
  const auto roofline = sched::network_roofline(v2, cfg, mem);
  std::printf(
      "\nMobileNet-V2 baseline at 16 B/cycle: compute %s cy, memory %s cy "
      "(%.1f MB moved), %d/%zu latency-bearing layers memory-bound\n",
      util::with_commas(roofline.compute_cycles).c_str(),
      util::with_commas(roofline.memory_cycles).c_str(),
      static_cast<double>(roofline.total_bytes) / 1e6,
      roofline.memory_bound_layers, v2.layers.size());

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_ablation_memory.csv");
    csv.write_header({"network", "bw1", "bw2", "bw4", "bw8", "bw16",
                      "bw32", "bw64", "inf"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("wrote bench_ablation_memory.csv\n");
  }
  return 0;
}
