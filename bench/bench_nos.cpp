// Extension (paper §VI): Neural Operator Search over the per-slot
// {depthwise, FuSe-Full, FuSe-Half} space for every evaluated network, in
// both budget directions:
//   min-latency s.t. params <= 1.05x baseline  (what Table I's variants
//       approximate with uniform choices)
//   max-params  s.t. latency in the band between the all-Half and
//       all-Full latencies (the regime where operators genuinely compete)
//
// Usage: bench_nos [--size=64] [--csv] [--threads=N] [--no-cache]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "nos/search.hpp"
#include "sched/sweep.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_nos.csv");
  bench::SweepHarness harness(flags);
  flags.parse(argc, argv);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  std::printf(
      "Neural Operator Search (paper §VI) on %s — B=depthwise, "
      "F=FuSe-Full, H=FuSe-Half\n\n",
      cfg.to_string().c_str());

  struct NetworkSearch {
    nos::NosResult min_latency;
    nos::NosResult max_params;
    double mid_band_ratio = 0.0;
  };
  const std::vector<nets::NetworkId> networks = nets::paper_networks();
  std::vector<NetworkSearch> searches(networks.size());
  sched::SweepEngine& engine = harness.engine(flags);
  // The per-network searches are independent; one task runs both budget
  // directions for its network.
  engine.pool().parallel_for(
      static_cast<std::int64_t>(networks.size()), [&](std::int64_t i) {
        const nets::NetworkId id = networks[static_cast<std::size_t>(i)];
        NetworkSearch& s = searches[static_cast<std::size_t>(i)];
        nos::NosConfig config;
        config.max_params_ratio = 1.05;
        s.min_latency = nos::search_operators(id, cfg, config);

        // Mid-band latency budget: halfway between all-Half and all-Full.
        const double half_ratio =
            1.0 / engine.speedup_vs_baseline(
                      id, core::NetworkVariant::kFuseHalf, cfg);
        const double full_ratio =
            1.0 / engine.speedup_vs_baseline(
                      id, core::NetworkVariant::kFuseFull, cfg);
        nos::NosLatencyBudgetConfig budget;
        budget.max_cycles_ratio = 0.5 * (half_ratio + full_ratio);
        s.mid_band_ratio = budget.max_cycles_ratio;
        s.max_params = nos::search_capacity(id, cfg, budget);
      });
  harness.stop();

  util::TablePrinter table({"Network", "Objective", "Params", "Speedup",
                            "Per-slot assignment"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < networks.size(); ++i) {
    const nets::NetworkId id = networks[i];
    const NetworkSearch& s = searches[i];
    table.add_row({nets::network_name(id), "min latency @ 1.05x params",
                   util::fixed(s.min_latency.params_ratio, 3) + "x",
                   util::fixed(s.min_latency.speedup, 2) + "x",
                   s.min_latency.modes_string()});
    csv_rows.push_back({nets::network_name(id), "min_latency",
                        util::fixed(s.min_latency.params_ratio, 4),
                        util::fixed(s.min_latency.speedup, 3),
                        s.min_latency.modes_string()});
    table.add_row({nets::network_name(id),
                   "max params @ " + util::fixed(s.mid_band_ratio, 3) +
                       "x latency",
                   util::fixed(s.max_params.params_ratio, 3) + "x",
                   util::fixed(s.max_params.speedup, 2) + "x",
                   s.max_params.modes_string()});
    csv_rows.push_back({nets::network_name(id), "max_params",
                        util::fixed(s.max_params.params_ratio, 4),
                        util::fixed(s.max_params.speedup, 3),
                        s.max_params.modes_string()});
    table.add_separator();
  }
  table.print(std::cout);
  harness.print_footer();
  std::printf(
      "\nmixed assignments in the capacity rows are the point: operator "
      "choice is a\nper-layer decision, which is what the paper's NOS "
      "proposal asks search to own.\n");

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_nos.csv");
    csv.write_header(
        {"network", "objective", "params_ratio", "speedup", "modes"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("wrote bench_nos.csv\n");
  }
  return 0;
}
