// Extension (paper §VI): Neural Operator Search over the per-slot
// {depthwise, FuSe-Full, FuSe-Half} space for every evaluated network, in
// both budget directions:
//   min-latency s.t. params <= 1.05x baseline  (what Table I's variants
//       approximate with uniform choices)
//   max-params  s.t. latency in the band between the all-Half and
//       all-Full latencies (the regime where operators genuinely compete)
//
// Usage: bench_nos [--size=64] [--csv]
#include <cstdio>
#include <iostream>

#include "nos/search.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_nos.csv");
  flags.parse(argc, argv);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  std::printf(
      "Neural Operator Search (paper §VI) on %s — B=depthwise, "
      "F=FuSe-Full, H=FuSe-Half\n\n",
      cfg.to_string().c_str());

  util::TablePrinter table({"Network", "Objective", "Params", "Speedup",
                            "Per-slot assignment"});
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id : nets::paper_networks()) {
    {
      nos::NosConfig config;
      config.max_params_ratio = 1.05;
      const nos::NosResult r = nos::search_operators(id, cfg, config);
      table.add_row({nets::network_name(id), "min latency @ 1.05x params",
                     util::fixed(r.params_ratio, 3) + "x",
                     util::fixed(r.speedup, 2) + "x", r.modes_string()});
      csv_rows.push_back({nets::network_name(id), "min_latency",
                          util::fixed(r.params_ratio, 4),
                          util::fixed(r.speedup, 3), r.modes_string()});
    }
    {
      // Mid-band latency budget: halfway between all-Half and all-Full.
      const double half_ratio =
          1.0 / sched::speedup_vs_baseline(
                    id, core::NetworkVariant::kFuseHalf, cfg);
      const double full_ratio =
          1.0 / sched::speedup_vs_baseline(
                    id, core::NetworkVariant::kFuseFull, cfg);
      nos::NosLatencyBudgetConfig config;
      config.max_cycles_ratio = 0.5 * (half_ratio + full_ratio);
      const nos::NosResult r = nos::search_capacity(id, cfg, config);
      table.add_row({nets::network_name(id),
                     "max params @ " +
                         util::fixed(config.max_cycles_ratio, 3) +
                         "x latency",
                     util::fixed(r.params_ratio, 3) + "x",
                     util::fixed(r.speedup, 2) + "x", r.modes_string()});
      csv_rows.push_back({nets::network_name(id), "max_params",
                          util::fixed(r.params_ratio, 4),
                          util::fixed(r.speedup, 3), r.modes_string()});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf(
      "\nmixed assignments in the capacity rows are the point: operator "
      "choice is a\nper-layer decision, which is what the paper's NOS "
      "proposal asks search to own.\n");

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_nos.csv");
    csv.write_header(
        {"network", "objective", "params_ratio", "speedup", "modes"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("wrote bench_nos.csv\n");
  }
  return 0;
}
