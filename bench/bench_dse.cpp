// Design-space-explorer benchmark: the closed-form evaluator's
// configs-per-second against the plan-materializing baseline, plus the
// Pareto frontier artifact.
//
// Three parts:
//   1. Equality: on a config subset spanning every axis, the closed-form
//      evaluator's roofline (bound/compute/memory cycles, total bytes)
//      is FUSE_CHECKed equal to plan_roofline(plan_network(...)) for
//      every workload model, in BOTH schedule modes — the bench aborts
//      on any mismatch before a single timing is taken (the bench_sim
//      idiom: every run is a standing verification of the
//      sched/eval_fast.hpp contract).
//   2. Throughput: the subset is then scored by both paths
//      single-threaded and the full grid by the evaluator; the
//      configs-per-second ratio must clear the >= 10x gate
//      (FUSE_CHECKed, like bench_serve's 2x batching gate).
//   3. Frontier: the full-grid explore() result is printed and written
//      as CSV/JSON. Everything except the "# ..." wall-clock lines is
//      byte-deterministic at any --threads value.
//
// The schedule mode is pinned to fused internally: the explorer always
// plans fused (its latencies are never worse), and pinning keeps the
// artifact independent of FUSE_SCHED_MODE.
//
// Usage: bench_dse [--threads=N] [--no-cache] [--csv] [--json=<path>]
//   --csv writes bench_dse.csv (the full point table, frontier column);
//   --json writes the machine-readable artifact for
//   results/BENCH_dse.json (tools/regenerate_results.sh).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "dse/explore.hpp"
#include "sched/netplan.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The plan-materializing baseline: what every sweep paid before
/// sched/eval_fast — lower every layer, fold the plans into a
/// NetworkPlan, take its roofline.
std::uint64_t plan_path_bound_cycles(
    const dse::DesignPoint& point,
    const std::vector<nets::NetworkModel>& workload, sched::SchedMode mode) {
  std::uint64_t bound = 0;
  for (const nets::NetworkModel& model : workload) {
    const sched::NetworkPlan plan =
        sched::plan_network(model, point.cfg, point.mem, mode);
    bound += sched::plan_roofline(plan).bound_cycles;
  }
  return bound;
}

std::uint64_t fast_path_bound_cycles(
    const dse::DesignPoint& point,
    const std::vector<nets::NetworkModel>& workload, sched::SchedMode mode,
    sched::EvalCache* cache) {
  std::uint64_t bound = 0;
  for (const nets::NetworkModel& model : workload) {
    bound += sched::eval_network_fast(model, point.cfg, point.mem, mode,
                                      cache)
                 .roofline.bound_cycles;
  }
  return bound;
}

void write_json(const std::string& path, const dse::ExploreResult& result,
                std::size_t subset_size, double plan_cps, double fast_cps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FUSE_CHECK(f != nullptr) << "cannot write " << path;
  // Family declaration order matters (first match wins): the wall
  // metrics are carved out before the exact catch-all claims the rest.
  std::fprintf(f,
               "{\n  \"bench\": \"bench_dse\",\n"
               "  \"workload\": \"paper_networks_x_baseline_full_half\",\n"
               "  \"metric_families\": {\n"
               "    \"wall_higher_better\": [\"*_cps\", "
               "\"speedup_vs_plan\"],\n"
               "    \"exact\": [\"*\"]\n  },\n  \"rows\": [\n");
  for (std::size_t i = 0; i < result.front.entries().size(); ++i) {
    const dse::ParetoEntry& entry = result.front.entries()[i];
    const dse::DesignPoint& point = result.points[entry.id];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", \"bound_cycles\": %llu, "
        "\"latency_ms\": %.6f, \"area_mm2\": %.6f, \"power_w\": %.6f}%s\n",
        point.label().c_str(),
        static_cast<unsigned long long>(result.bound_cycles[entry.id]),
        entry.obj.latency_ms, entry.obj.area_mm2, entry.obj.power_w,
        i + 1 < result.front.entries().size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"total\": {\"configs\": %zu, \"frontier_size\": %zu, "
      "\"points_pruned\": %llu, \"equality_subset\": %zu, "
      "\"plan_cps\": %.2f, \"fast_cps\": %.2f, "
      "\"speedup_vs_plan\": %.2f}\n}\n",
      result.points.size(), result.front.entries().size(),
      static_cast<unsigned long long>(result.front.pruned()), subset_size,
      plan_cps, fast_cps, fast_cps / plan_cps);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("threads", -1, "worker threads for the frontier sweep");
  flags.add_bool("no-cache", false, "disable per-layer cost memoization");
  flags.add_bool("csv", false, "also write bench_dse.csv");
  flags.add_string("json", "", "write machine-readable results to <path>");
  flags.parse(argc, argv);

  const dse::DseAxes axes;
  const std::vector<dse::DesignPoint> points =
      dse::enumerate_design_points(axes);
  const std::vector<nets::NetworkModel> workload =
      dse::default_dse_workload();
  // Pinned: the explorer's schedule (see the file comment).
  const sched::SchedMode mode = sched::SchedMode::kFused;

  // Every 15th point: 12 of 180, hitting every shape, both broadcast
  // settings, and every pipelining/datapath/SRAM value at least once
  // (stride 15 is coprime to the 36-point and 18-point inner blocks).
  std::vector<dse::DesignPoint> subset;
  for (std::size_t i = 0; i < points.size(); i += 15) {
    subset.push_back(points[i]);
  }

  std::printf(
      "Closed-form evaluator vs plan-materializing baseline "
      "(%zu-model workload, fused schedule)\n\n",
      workload.size());

  // --- 1. equality gate (before any timing) ---------------------------------
  for (const dse::DesignPoint& point : subset) {
    for (sched::SchedMode check_mode :
         {sched::SchedMode::kPerLayer, sched::SchedMode::kFused}) {
      for (const nets::NetworkModel& model : workload) {
        const sched::NetworkPlan plan = sched::plan_network(
            model, point.cfg, point.mem, check_mode);
        const sched::NetworkRoofline oracle = sched::plan_roofline(plan);
        const sched::NetworkEval ev = sched::eval_network_fast(
            model, point.cfg, point.mem, check_mode);
        FUSE_CHECK(ev.total_cycles == plan.total_cycles &&
                   ev.roofline.bound_cycles == oracle.bound_cycles &&
                   ev.roofline.compute_cycles == oracle.compute_cycles &&
                   ev.roofline.memory_cycles == oracle.memory_cycles &&
                   ev.roofline.total_bytes == oracle.total_bytes)
            << model.name << " on " << point.label() << " ("
            << sched_mode_name(check_mode)
            << "): closed-form evaluator diverged from the plan path";
      }
    }
  }
  std::printf("equality: %zu configs x %zu models x 2 modes match the "
              "plan path exactly\n\n",
              subset.size(), workload.size());

  // --- 2. throughput: both paths single-threaded on the subset --------------
  // Neither timed leg memoizes: the comparison is the bare evaluator
  // against the bare plan path. (The memo cache is a separate, optional
  // layer — its effect shows up in the explore() leg below.)
  const auto t_plan = std::chrono::steady_clock::now();
  std::uint64_t plan_checksum = 0;
  for (const dse::DesignPoint& point : subset) {
    plan_checksum += plan_path_bound_cycles(point, workload, mode);
  }
  const double plan_ms = elapsed_ms(t_plan);

  const auto t_fast = std::chrono::steady_clock::now();
  std::uint64_t fast_checksum = 0;
  for (const dse::DesignPoint& point : subset) {
    fast_checksum += fast_path_bound_cycles(point, workload, mode, nullptr);
  }
  const double fast_ms = elapsed_ms(t_fast);
  FUSE_CHECK(plan_checksum == fast_checksum)
      << "timed legs disagree: plan " << plan_checksum << " vs fast "
      << fast_checksum;

  const double plan_cps = 1e3 * static_cast<double>(subset.size()) / plan_ms;
  const double fast_cps = 1e3 * static_cast<double>(subset.size()) / fast_ms;
  const double speedup = fast_cps / plan_cps;
  // The headline gate: a sweep that still materializes MappingPlans is
  // at least an order of magnitude too slow for this grid.
  FUSE_CHECK(speedup >= 10.0)
      << "evaluator throughput gate: " << speedup << "x < 10x";

  // --- 3. the frontier over the full grid -----------------------------------
  dse::ExploreOptions options;
  options.mode = mode;
  options.threads = static_cast<int>(flags.get_int("threads"));
  options.use_cache = !flags.get_bool("no-cache");
  const dse::ExploreResult result = dse::explore(axes, workload, options);

  util::TablePrinter table({"Config", "Latency (ms)", "Area (mm^2)",
                            "Power (W)", "Bound cycles"});
  for (const dse::ParetoEntry& entry : result.front.entries()) {
    const dse::DesignPoint& point = result.points[entry.id];
    table.add_row({point.label(), util::fixed(entry.obj.latency_ms, 3),
                   util::fixed(entry.obj.area_mm2, 2),
                   util::fixed(entry.obj.power_w, 2),
                   std::to_string(result.bound_cycles[entry.id])});
  }
  table.print(std::cout);
  std::printf(
      "\nfrontier: %zu of %zu configurations survive; %llu dominated "
      "points pruned\n",
      result.front.entries().size(), result.points.size(),
      static_cast<unsigned long long>(result.front.pruned()));

  // Wall-clock lines: excluded from determinism diffs (filter_bench_output).
  std::printf("# plan path:  %7.1f ms for %zu configs (%.1f configs/s)\n",
              plan_ms, subset.size(), plan_cps);
  std::printf("# fast path:  %7.1f ms for %zu configs (%.1f configs/s)\n",
              fast_ms, subset.size(), fast_cps);
  std::printf("# speedup: %.1fx (gate >= 10x); full %zu-point grid via "
              "explore(); memo hit rate %.1f%%\n",
              speedup, result.points.size(), result.memo_hit_pct);

  if (flags.get_bool("csv")) {
    dse::write_explore_csv(result, "bench_dse.csv");
    std::printf("wrote bench_dse.csv\n");
  }
  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    write_json(json_path, result, subset.size(), plan_cps, fast_cps);
    // "# " prefix: the json path differs between check.sh's determinism
    // legs, so this line must be excluded from the stdout diff.
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}
