// Extension: the accelerator-design view. For each array size, combine the
// latency model with the 45 nm area/power model into throughput-per-area
// and throughput-per-watt — the metrics an accelerator architect actually
// buys with the broadcast links. FuSeConv shifts the sweet spot: baseline
// networks stop scaling (under-utilization), FuSe variants keep converting
// silicon into speed through 128x128.
//
// Usage: bench_pareto [--net=v2] [--csv] [--threads=N] [--no-cache]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "dse/pareto.hpp"
#include "hw/area_power.hpp"
#include "sched/sweep.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

namespace {

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("net", "v2", "network: v1|v2|v3s|v3l|mnas");
  flags.add_bool("csv", false, "also write bench_pareto.csv");
  bench::SweepHarness harness(flags);
  flags.parse(argc, argv);

  const nets::NetworkId id = nets::parse_network_flag(flags.get_string("net"));
  const hw::PeComponentModel hw_model = hw::nangate45_model();
  const auto baseline = nets::build_network(id);
  const int slots = nets::num_fuse_slots(id);
  const auto fused = nets::build_network(
      id, core::uniform_modes(slots, core::FuseMode::kHalf));

  std::printf(
      "Accelerator design space for %s — throughput per area/power "
      "(700 MHz, 45 nm model)\n\n",
      nets::network_name(id).c_str());

  const std::vector<std::int64_t> sizes = {8, 16, 32, 64, 128};
  struct Point {
    hw::ArrayHwReport hw;
    double base_inf_s = 0.0;
    double fuse_inf_s = 0.0;
  };
  std::vector<Point> points(sizes.size());
  sched::SweepEngine& engine = harness.engine(flags);
  engine.pool().parallel_for(
      static_cast<std::int64_t>(sizes.size()), [&](std::int64_t i) {
        const std::size_t s = static_cast<std::size_t>(i);
        const auto cfg = systolic::square_array(sizes[s]);
        const double hz = cfg.freq_mhz * 1e6;
        points[s].hw = hw::array_hw(cfg, hw_model);
        points[s].base_inf_s =
            hz / static_cast<double>(engine.network_cycles(baseline, cfg));
        points[s].fuse_inf_s =
            hz / static_cast<double>(engine.network_cycles(fused, cfg));
      });
  harness.stop();

  util::TablePrinter table({"Array", "Area (mm^2)", "Power (W)",
                            "base inf/s", "FuSe inf/s", "FuSe inf/s/mm^2",
                            "FuSe inf/J"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const std::int64_t size = sizes[s];
    const Point& p = points[s];
    const double watts = p.hw.power_mw / 1e3;
    table.add_row({std::to_string(size) + "x" + std::to_string(size),
                   util::fixed(p.hw.area_mm2, 2),
                   util::fixed(watts, 2),
                   util::fixed(p.base_inf_s, 0),
                   util::fixed(p.fuse_inf_s, 0),
                   util::fixed(p.fuse_inf_s / p.hw.area_mm2, 0),
                   util::fixed(p.fuse_inf_s / watts, 0)});
    csv_rows.push_back({std::to_string(size),
                        util::fixed(p.hw.area_mm2, 3),
                        util::fixed(watts, 3),
                        util::fixed(p.base_inf_s, 1),
                        util::fixed(p.fuse_inf_s, 1)});
  }
  table.print(std::cout);
  harness.print_footer();

  // Pareto annotation over {FuSe latency, area, power} — the dominance
  // logic is dse/pareto.hpp's, shared with the full design-space
  // explorer (examples/dse_explore), not a local copy.
  std::vector<dse::Objectives> objectives;
  for (const Point& p : points) {
    dse::Objectives obj;
    obj.latency_ms = 1e3 / p.fuse_inf_s;
    obj.area_mm2 = p.hw.area_mm2;
    obj.power_w = p.hw.power_mw / 1e3;
    objectives.push_back(obj);
  }
  std::string frontier;
  for (std::size_t idx : dse::pareto_frontier(objectives)) {
    if (!frontier.empty()) {
      frontier += ", ";
    }
    frontier += std::to_string(sizes[idx]) + "x" + std::to_string(sizes[idx]);
  }
  std::printf("\nPareto frontier over {FuSe latency, area, power}: %s\n",
              frontier.c_str());
  std::printf(
      "\nFuSe keeps converting PEs into throughput where the baseline "
      "saturates; the\nthroughput-per-area optimum moves toward smaller "
      "arrays for both (skew and\ndrain amortize worse as S grows), but "
      "FuSe's optimum delivers several times\nmore inferences per mm^2 and "
      "per joule.\n");

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_pareto.csv");
    csv.write_header(
        {"size", "area_mm2", "power_w", "base_inf_s", "fuse_inf_s"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("wrote bench_pareto.csv\n");
  }
  return 0;
}
