// Extension: what the fused network schedule (sched/netplan.hpp) is worth.
// For every paper network/variant, builds the per-layer and the fused
// NetworkPlan on the same array and compares their rooflines: compute
// cycles are identical by construction (fusion only reorders whole folds),
// so the entire win is the removed DRAM traffic — each legal
// depthwise/FuSe -> pointwise pair keeps the intermediate activation in
// SRAM instead of flushing it and re-streaming it per column-fold. The
// bench FUSE_CHECKs the never-slower contract on every cell: equal compute
// cycles, fused bytes <= per-layer bytes, fused bound <= per-layer bound.
//
// Usage: bench_fusion [--size=64] [--json=<path>] [--csv]
//   --json writes the machine-readable rows consumed by
//   results/BENCH_fusion.json (tools/regenerate_results.sh).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sched/latency.hpp"
#include "sched/netplan.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

namespace {

struct Row {
  std::string network;
  std::string variant;
  std::size_t pairs = 0;
  std::uint64_t compute_cycles = 0;
  std::uint64_t mem_per_layer = 0;
  std::uint64_t mem_fused = 0;
  std::uint64_t bytes_per_layer = 0;
  std::uint64_t bytes_fused = 0;
  std::uint64_t bound_per_layer = 0;
  std::uint64_t bound_fused = 0;

  double bound_saving_pct() const {
    if (bound_per_layer == 0) {
      return 0.0;
    }
    return 100.0 *
           static_cast<double>(bound_per_layer - bound_fused) /
           static_cast<double>(bound_per_layer);
  }
};

void write_json(const std::string& path, const std::vector<Row>& rows,
                const systolic::ArrayConfig& cfg,
                const systolic::MemoryConfig& mem) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FUSE_CHECK(f != nullptr) << "cannot write " << path;
  std::fprintf(f,
               "{\n  \"bench\": \"bench_fusion\",\n"
               "  \"array\": \"%s\",\n"
               "  \"dram_bytes_per_cycle\": %g,\n  \"rows\": [\n",
               cfg.to_string().c_str(), mem.dram_bytes_per_cycle);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"network\": \"%s\", \"variant\": \"%s\", \"pairs\": %zu, "
        "\"compute_cycles\": %llu, \"mem_cycles_per_layer\": %llu, "
        "\"mem_cycles_fused\": %llu, \"bytes_per_layer\": %llu, "
        "\"bytes_fused\": %llu, \"bound_per_layer\": %llu, "
        "\"bound_fused\": %llu, \"bound_saving_pct\": %.2f}%s\n",
        r.network.c_str(), r.variant.c_str(), r.pairs,
        static_cast<unsigned long long>(r.compute_cycles),
        static_cast<unsigned long long>(r.mem_per_layer),
        static_cast<unsigned long long>(r.mem_fused),
        static_cast<unsigned long long>(r.bytes_per_layer),
        static_cast<unsigned long long>(r.bytes_fused),
        static_cast<unsigned long long>(r.bound_per_layer),
        static_cast<unsigned long long>(r.bound_fused),
        r.bound_saving_pct(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_string("json", "", "write machine-readable rows here");
  flags.add_bool("csv", false, "also write bench_fusion.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const systolic::MemoryConfig mem;

  // Both schedules are built explicitly, so the table is the same whatever
  // the global --sched-mode is — which is exactly what the check.sh
  // schedule-equality stage pins.
  std::printf(
      "Inter-layer fold fusion: per-layer vs fused schedule roofline\n"
      "(%s array, %g B/cycle DRAM, %lld KiB SRAM; compute cycles are\n"
      "identical across modes — the fused win is removed load/flush "
      "traffic)\n\n",
      cfg.to_string().c_str(), mem.dram_bytes_per_cycle,
      static_cast<long long>(mem.sram_bytes / 1024));

  util::TablePrinter table({"Network", "Variant", "Pairs", "Mem cy (layer)",
                            "Mem cy (fused)", "MB saved", "Bound (layer)",
                            "Bound (fused)", "Saved"});
  std::vector<Row> rows;
  const std::vector<nets::NetworkId>& networks = nets::paper_networks();
  for (nets::NetworkId id : networks) {
    for (core::NetworkVariant variant : core::all_network_variants()) {
      const sched::VariantBuild build =
          sched::build_variant(id, variant, cfg);
      const sched::NetworkPlan per_plan = sched::plan_network(
          build.model, cfg, mem, sched::SchedMode::kPerLayer);
      const sched::NetworkPlan fused_plan = sched::plan_network(
          build.model, cfg, mem, sched::SchedMode::kFused);
      const sched::NetworkRoofline per = sched::plan_roofline(per_plan);
      const sched::NetworkRoofline fused = sched::plan_roofline(fused_plan);

      // The never-slower contract, re-proved on every cell.
      FUSE_CHECK(fused.compute_cycles == per.compute_cycles)
          << build.model.name << ": fusion changed compute cycles";
      FUSE_CHECK(fused.total_bytes <= per.total_bytes)
          << build.model.name << ": fusion added traffic";
      FUSE_CHECK(fused.bound_cycles <= per.bound_cycles)
          << build.model.name << ": fused bound above per-layer";

      Row row;
      row.network = nets::network_name(id);
      row.variant = core::network_variant_name(variant);
      row.pairs = fused_plan.fused_pairs.size();
      row.compute_cycles = per.compute_cycles;
      row.mem_per_layer = per.memory_cycles;
      row.mem_fused = fused.memory_cycles;
      row.bytes_per_layer = per.total_bytes;
      row.bytes_fused = fused.total_bytes;
      row.bound_per_layer = per.bound_cycles;
      row.bound_fused = fused.bound_cycles;
      table.add_row(
          {row.network, row.variant, std::to_string(row.pairs),
           util::with_commas(row.mem_per_layer),
           util::with_commas(row.mem_fused),
           util::fixed(static_cast<double>(row.bytes_per_layer -
                                           row.bytes_fused) /
                           1e6,
                       1),
           util::with_commas(row.bound_per_layer),
           util::with_commas(row.bound_fused),
           util::fixed(row.bound_saving_pct(), 1) + "%"});
      rows.push_back(std::move(row));
    }
    if (id != networks.back()) {
      table.add_separator();
    }
  }
  table.print(std::cout);
  std::printf(
      "\nall %zu cells satisfy: equal compute, fused bytes <= per-layer "
      "bytes, fused bound <= per-layer bound\n",
      rows.size());

  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    write_json(json_path, rows, cfg, mem);
  }
  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_fusion.csv");
    csv.write_header({"network", "variant", "pairs", "compute_cycles",
                      "mem_cycles_per_layer", "mem_cycles_fused",
                      "bytes_per_layer", "bytes_fused", "bound_per_layer",
                      "bound_fused"});
    for (const Row& r : rows) {
      csv.write_row({r.network, r.variant, std::to_string(r.pairs),
                     std::to_string(r.compute_cycles),
                     std::to_string(r.mem_per_layer),
                     std::to_string(r.mem_fused),
                     std::to_string(r.bytes_per_layer),
                     std::to_string(r.bytes_fused),
                     std::to_string(r.bound_per_layer),
                     std::to_string(r.bound_fused)});
    }
    std::printf("wrote bench_fusion.csv\n");
  }
  return 0;
}
