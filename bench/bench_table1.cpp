// Reproduces Table I: ImageNet accuracy (paper-reported; see DESIGN.md for
// the training substitution), MACs, params, and speedup on a 64x64
// output-stationary systolic array for 5 networks x 5 variants.
//
// Usage: bench_table1 [--size=64] [--csv] [--threads=N] [--no-cache]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/sweep.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_table1.csv");
  bench::SweepHarness harness(flags);
  flags.parse(argc, argv);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  std::printf("Table I reproduction — %s array, output-stationary\n",
              cfg.to_string().c_str());
  std::printf(
      "(accuracy column = paper-reported ImageNet top-1; this repo's "
      "synthetic-accuracy study is bench_accuracy_synth)\n\n");

  sched::SweepEngine& engine = harness.engine(flags);
  const auto rows = engine.table1_rows(cfg);
  harness.stop();

  util::TablePrinter table({"Network", "Acc% (paper)", "MACs(M)",
                            "paper", "Params(M)", "paper", "Speedup",
                            "paper"});
  nets::NetworkId last = rows.front().network;
  for (const auto& row : rows) {
    if (row.network != last) {
      table.add_separator();
      last = row.network;
    }
    const std::string label =
        nets::network_name(row.network) +
        (row.variant == core::NetworkVariant::kBaseline
             ? ""
             : " " + core::network_variant_name(row.variant));
    table.add_row({label, util::fixed(row.paper_accuracy, 2),
                   util::fixed(static_cast<double>(row.macs) / 1e6, 0),
                   util::fixed(row.paper_macs_millions, 0),
                   util::fixed(static_cast<double>(row.params) / 1e6, 2),
                   util::fixed(row.paper_params_millions, 2),
                   util::fixed(row.speedup, 2) + "x",
                   util::fixed(row.paper_speedup, 2) + "x"});
  }
  table.print(std::cout);
  harness.print_footer();

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_table1.csv");
    csv.write_header({"network", "variant", "macs", "params", "cycles",
                      "speedup", "paper_accuracy", "paper_macs_m",
                      "paper_params_m", "paper_speedup"});
    for (const auto& row : rows) {
      csv.write_row({nets::network_name(row.network),
                     core::network_variant_name(row.variant),
                     std::to_string(row.macs), std::to_string(row.params),
                     std::to_string(row.cycles),
                     util::fixed(row.speedup, 3),
                     util::fixed(row.paper_accuracy, 2),
                     util::fixed(row.paper_macs_millions, 1),
                     util::fixed(row.paper_params_millions, 2),
                     util::fixed(row.paper_speedup, 2)});
    }
    std::printf("\nwrote bench_table1.csv\n");
  }
  return 0;
}
