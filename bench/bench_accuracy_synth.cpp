// The accuracy-parity study substituting for Table I's ImageNet column
// (see DESIGN.md): trains a tiny depthwise-separable network and its
// FuSe-Full / FuSe-Half drop-in variants on the synthetic oriented-texture
// task and reports mean eval accuracy over seeds.
//
// Expected ordering, matching Table I's trend: Full ~= baseline (within
// ~1%), Half noticeably lower.
//
// Usage: bench_accuracy_synth [--seeds=3] [--epochs=8] [--train=256]
//        [--eval=128] [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "train/models.hpp"
#include "util/check.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;
using namespace fuse::train;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("seeds", 3, "seeds per variant");
  flags.add_int("epochs", 8, "training epochs");
  flags.add_int("train", 256, "training examples");
  flags.add_int("eval", 128, "eval examples");
  flags.add_string("task", "textures", "synthetic task: textures|blobs");
  flags.add_string("arch", "separable", "tiny net architecture: separable|inverted");
  flags.add_bool("csv", false, "also write bench_accuracy.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  DatasetConfig dc;  // 4-way, 3x16x16
  if (flags.get_string("task") == "blobs") {
    dc.task = SyntheticTask::kBlobScale;
  } else {
    FUSE_CHECK(flags.get_string("task") == "textures")
        << "unknown --task (textures|blobs)";
  }
  const TextureDataset train_data(dc, flags.get_int("train"), 1);
  const TextureDataset eval_data(dc, flags.get_int("eval"), 2);

  TrainConfig tc;
  tc.epochs = flags.get_int("epochs");
  tc.batch_size = 16;
  tc.lr = 0.01;

  std::printf(
      "Accuracy-parity study (ImageNet substitution; see DESIGN.md)\n"
      "task: %lld-way %s, %lldx%lldx%lld; %lld train / "
      "%lld eval; %lld epochs, RMSprop\n\n",
      static_cast<long long>(dc.num_classes),
      synthetic_task_name(dc.task).c_str(),
      static_cast<long long>(dc.channels),
      static_cast<long long>(dc.height),
      static_cast<long long>(dc.width),
      static_cast<long long>(train_data.size()),
      static_cast<long long>(eval_data.size()),
      static_cast<long long>(tc.epochs));

  struct Row {
    const char* label;
    core::FuseMode mode;
    double mean_acc = 0.0;
  };
  Row rows[] = {
      {"baseline (depthwise)", core::FuseMode::kBaseline, 0.0},
      {"FuSe-Full (D=1)", core::FuseMode::kFull, 0.0},
      {"FuSe-Half (D=2)", core::FuseMode::kHalf, 0.0},
  };

  const std::int64_t seeds = flags.get_int("seeds");
  for (Row& row : rows) {
    double sum = 0.0;
    for (std::int64_t seed = 0; seed < seeds; ++seed) {
      util::Rng rng(100 + static_cast<std::uint64_t>(seed));
      TinyNetConfig nc;
      nc.num_classes = dc.num_classes;
      auto net = flags.get_string("arch") == "inverted"
                     ? build_tiny_inverted_net(nc, row.mode, rng)
                     : build_tiny_net(nc, row.mode, rng);
      const TrainResult result =
          train_model(*net, train_data, eval_data, tc);
      sum += result.final_eval_accuracy;
    }
    row.mean_acc = sum / static_cast<double>(seeds);
    std::printf("  %-22s mean eval accuracy %.1f%% (%lld seeds)\n",
                row.label, 100.0 * row.mean_acc,
                static_cast<long long>(seeds));
  }

  std::printf(
      "\npaper Table I trend: Full within 1%% of baseline on average; "
      "Half drops >1%% on 4 of 5 networks\n"
      "measured trend: Full %+.1f%% vs baseline, Half %+.1f%% vs "
      "baseline\n",
      100.0 * (rows[1].mean_acc - rows[0].mean_acc),
      100.0 * (rows[2].mean_acc - rows[0].mean_acc));

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_accuracy.csv");
    csv.write_header({"variant", "mean_eval_accuracy"});
    for (const Row& row : rows) {
      csv.write_row({row.label, util::fixed(row.mean_acc, 4)});
    }
    std::printf("wrote bench_accuracy.csv\n");
  }
  return 0;
}
