// Ablation: are the proposed per-row weight-broadcast links actually
// necessary? Runs every network's FuSe-Half variant on arrays with and
// without the links (without them the 1-D convolutions degrade to the
// depthwise-style single-column mapping). This isolates the paper's
// HW/SW co-design claim: the operator alone is NOT enough — the dataflow
// modification is what unlocks the speedup.
//
// Usage: bench_ablation_broadcast [--size=64] [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sched/latency.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_bool("csv", false, "also write bench_ablation_broadcast.csv");
  bench::add_kernel_flags(flags);
  bench::add_sched_flags(flags);
  flags.parse(argc, argv);
  bench::apply_kernel_flags(flags);
  bench::apply_sched_flags(flags);

  const std::int64_t size = flags.get_int("size");
  const auto with = systolic::square_array(size, /*broadcast=*/true);
  const auto without = systolic::square_array(size, /*broadcast=*/false);

  std::printf(
      "Ablation: FuSe-Half speedup with vs without broadcast links "
      "(%lldx%lld array)\n\n",
      static_cast<long long>(size), static_cast<long long>(size));

  util::TablePrinter table({"Network", "baseline cycles",
                            "FuSe+links", "speedup",
                            "FuSe no-links", "speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  for (nets::NetworkId id : nets::paper_networks()) {
    const auto baseline = nets::build_network(id);
    const int slots = baseline.num_slots;
    const auto fused = nets::build_network(
        id, core::uniform_modes(slots, core::FuseMode::kHalf));

    const std::uint64_t base_cycles =
        sched::network_latency(baseline, with).total_cycles;
    const std::uint64_t with_cycles =
        sched::network_latency(fused, with).total_cycles;
    const std::uint64_t without_cycles =
        sched::network_latency(fused, without).total_cycles;

    const double speedup_with = static_cast<double>(base_cycles) /
                                static_cast<double>(with_cycles);
    const double speedup_without = static_cast<double>(base_cycles) /
                                   static_cast<double>(without_cycles);
    table.add_row({nets::network_name(id), util::with_commas(base_cycles),
                   util::with_commas(with_cycles),
                   util::fixed(speedup_with, 2) + "x",
                   util::with_commas(without_cycles),
                   util::fixed(speedup_without, 2) + "x"});
    csv_rows.push_back({nets::network_name(id),
                        std::to_string(base_cycles),
                        std::to_string(with_cycles),
                        util::fixed(speedup_with, 3),
                        std::to_string(without_cycles),
                        util::fixed(speedup_without, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nconclusion: without the broadcast links the FuSe operator is no "
      "faster than\n(or even slower than) the depthwise baseline — the "
      "operator and the dataflow\nmodification only work together, which "
      "is the co-design argument of §IV.\n");

  if (flags.get_bool("csv")) {
    util::CsvWriter csv("bench_ablation_broadcast.csv");
    csv.write_header({"network", "baseline_cycles", "fuse_links_cycles",
                      "speedup_links", "fuse_nolinks_cycles",
                      "speedup_nolinks"});
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("wrote bench_ablation_broadcast.csv\n");
  }
  return 0;
}
