file(REMOVE_RECURSE
  "CMakeFiles/train_synthetic.dir/train_synthetic.cpp.o"
  "CMakeFiles/train_synthetic.dir/train_synthetic.cpp.o.d"
  "train_synthetic"
  "train_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
