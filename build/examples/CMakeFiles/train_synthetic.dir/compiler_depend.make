# Empty compiler generated dependencies file for train_synthetic.
# This may be replaced when dependencies are built.
