file(REMOVE_RECURSE
  "CMakeFiles/pe_heatmap.dir/pe_heatmap.cpp.o"
  "CMakeFiles/pe_heatmap.dir/pe_heatmap.cpp.o.d"
  "pe_heatmap"
  "pe_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
