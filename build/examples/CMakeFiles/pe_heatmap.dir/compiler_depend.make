# Empty compiler generated dependencies file for pe_heatmap.
# This may be replaced when dependencies are built.
