file(REMOVE_RECURSE
  "CMakeFiles/operator_search.dir/operator_search.cpp.o"
  "CMakeFiles/operator_search.dir/operator_search.cpp.o.d"
  "operator_search"
  "operator_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
