# Empty compiler generated dependencies file for operator_search.
# This may be replaced when dependencies are built.
