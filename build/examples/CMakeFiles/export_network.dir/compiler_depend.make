# Empty compiler generated dependencies file for export_network.
# This may be replaced when dependencies are built.
