file(REMOVE_RECURSE
  "CMakeFiles/export_network.dir/export_network.cpp.o"
  "CMakeFiles/export_network.dir/export_network.cpp.o.d"
  "export_network"
  "export_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
