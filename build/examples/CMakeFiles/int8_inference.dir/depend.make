# Empty dependencies file for int8_inference.
# This may be replaced when dependencies are built.
