file(REMOVE_RECURSE
  "CMakeFiles/int8_inference.dir/int8_inference.cpp.o"
  "CMakeFiles/int8_inference.dir/int8_inference.cpp.o.d"
  "int8_inference"
  "int8_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int8_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
