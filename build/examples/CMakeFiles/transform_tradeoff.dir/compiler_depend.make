# Empty compiler generated dependencies file for transform_tradeoff.
# This may be replaced when dependencies are built.
