file(REMOVE_RECURSE
  "CMakeFiles/transform_tradeoff.dir/transform_tradeoff.cpp.o"
  "CMakeFiles/transform_tradeoff.dir/transform_tradeoff.cpp.o.d"
  "transform_tradeoff"
  "transform_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
