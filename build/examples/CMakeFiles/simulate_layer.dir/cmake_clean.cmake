file(REMOVE_RECURSE
  "CMakeFiles/simulate_layer.dir/simulate_layer.cpp.o"
  "CMakeFiles/simulate_layer.dir/simulate_layer.cpp.o.d"
  "simulate_layer"
  "simulate_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
