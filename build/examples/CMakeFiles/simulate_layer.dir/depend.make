# Empty dependencies file for simulate_layer.
# This may be replaced when dependencies are built.
