file(REMOVE_RECURSE
  "CMakeFiles/test_nn_ops.dir/test_nn_ops.cpp.o"
  "CMakeFiles/test_nn_ops.dir/test_nn_ops.cpp.o.d"
  "test_nn_ops"
  "test_nn_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
