file(REMOVE_RECURSE
  "CMakeFiles/test_ria.dir/test_ria.cpp.o"
  "CMakeFiles/test_ria.dir/test_ria.cpp.o.d"
  "test_ria"
  "test_ria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
