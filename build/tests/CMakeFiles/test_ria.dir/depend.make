# Empty dependencies file for test_ria.
# This may be replaced when dependencies are built.
