# Empty dependencies file for test_systolic_sim.
# This may be replaced when dependencies are built.
