file(REMOVE_RECURSE
  "CMakeFiles/test_systolic_sim.dir/test_systolic_sim.cpp.o"
  "CMakeFiles/test_systolic_sim.dir/test_systolic_sim.cpp.o.d"
  "test_systolic_sim"
  "test_systolic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
