file(REMOVE_RECURSE
  "CMakeFiles/test_nos.dir/test_nos.cpp.o"
  "CMakeFiles/test_nos.dir/test_nos.cpp.o.d"
  "test_nos"
  "test_nos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
