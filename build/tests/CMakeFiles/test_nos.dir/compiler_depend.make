# Empty compiler generated dependencies file for test_nos.
# This may be replaced when dependencies are built.
