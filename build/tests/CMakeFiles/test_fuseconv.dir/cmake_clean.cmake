file(REMOVE_RECURSE
  "CMakeFiles/test_fuseconv.dir/test_fuseconv.cpp.o"
  "CMakeFiles/test_fuseconv.dir/test_fuseconv.cpp.o.d"
  "test_fuseconv"
  "test_fuseconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuseconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
