# Empty dependencies file for test_fuseconv.
# This may be replaced when dependencies are built.
