# Empty dependencies file for test_systolic_model.
# This may be replaced when dependencies are built.
