file(REMOVE_RECURSE
  "CMakeFiles/test_systolic_model.dir/test_systolic_model.cpp.o"
  "CMakeFiles/test_systolic_model.dir/test_systolic_model.cpp.o.d"
  "test_systolic_model"
  "test_systolic_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
