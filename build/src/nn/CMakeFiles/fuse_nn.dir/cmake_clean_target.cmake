file(REMOVE_RECURSE
  "libfuse_nn.a"
)
