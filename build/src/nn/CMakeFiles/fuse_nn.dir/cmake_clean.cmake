file(REMOVE_RECURSE
  "CMakeFiles/fuse_nn.dir/activations.cpp.o"
  "CMakeFiles/fuse_nn.dir/activations.cpp.o.d"
  "CMakeFiles/fuse_nn.dir/layer.cpp.o"
  "CMakeFiles/fuse_nn.dir/layer.cpp.o.d"
  "CMakeFiles/fuse_nn.dir/ops.cpp.o"
  "CMakeFiles/fuse_nn.dir/ops.cpp.o.d"
  "CMakeFiles/fuse_nn.dir/quantized.cpp.o"
  "CMakeFiles/fuse_nn.dir/quantized.cpp.o.d"
  "libfuse_nn.a"
  "libfuse_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
