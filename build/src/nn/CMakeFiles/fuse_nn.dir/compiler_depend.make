# Empty compiler generated dependencies file for fuse_nn.
# This may be replaced when dependencies are built.
