
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/fuse_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/fuse_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/fuse_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/fuse_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/ops.cpp" "src/nn/CMakeFiles/fuse_nn.dir/ops.cpp.o" "gcc" "src/nn/CMakeFiles/fuse_nn.dir/ops.cpp.o.d"
  "/root/repo/src/nn/quantized.cpp" "src/nn/CMakeFiles/fuse_nn.dir/quantized.cpp.o" "gcc" "src/nn/CMakeFiles/fuse_nn.dir/quantized.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fuse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
