file(REMOVE_RECURSE
  "CMakeFiles/fuse_tensor.dir/half.cpp.o"
  "CMakeFiles/fuse_tensor.dir/half.cpp.o.d"
  "CMakeFiles/fuse_tensor.dir/im2col.cpp.o"
  "CMakeFiles/fuse_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/fuse_tensor.dir/quantize.cpp.o"
  "CMakeFiles/fuse_tensor.dir/quantize.cpp.o.d"
  "CMakeFiles/fuse_tensor.dir/shape.cpp.o"
  "CMakeFiles/fuse_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/fuse_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fuse_tensor.dir/tensor.cpp.o.d"
  "libfuse_tensor.a"
  "libfuse_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
