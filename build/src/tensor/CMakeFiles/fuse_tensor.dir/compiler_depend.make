# Empty compiler generated dependencies file for fuse_tensor.
# This may be replaced when dependencies are built.
