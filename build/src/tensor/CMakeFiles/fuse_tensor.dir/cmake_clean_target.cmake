file(REMOVE_RECURSE
  "libfuse_tensor.a"
)
