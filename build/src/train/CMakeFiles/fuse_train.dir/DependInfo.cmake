
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/dataset.cpp" "src/train/CMakeFiles/fuse_train.dir/dataset.cpp.o" "gcc" "src/train/CMakeFiles/fuse_train.dir/dataset.cpp.o.d"
  "/root/repo/src/train/fuse_module.cpp" "src/train/CMakeFiles/fuse_train.dir/fuse_module.cpp.o" "gcc" "src/train/CMakeFiles/fuse_train.dir/fuse_module.cpp.o.d"
  "/root/repo/src/train/loss.cpp" "src/train/CMakeFiles/fuse_train.dir/loss.cpp.o" "gcc" "src/train/CMakeFiles/fuse_train.dir/loss.cpp.o.d"
  "/root/repo/src/train/models.cpp" "src/train/CMakeFiles/fuse_train.dir/models.cpp.o" "gcc" "src/train/CMakeFiles/fuse_train.dir/models.cpp.o.d"
  "/root/repo/src/train/module.cpp" "src/train/CMakeFiles/fuse_train.dir/module.cpp.o" "gcc" "src/train/CMakeFiles/fuse_train.dir/module.cpp.o.d"
  "/root/repo/src/train/optimizer.cpp" "src/train/CMakeFiles/fuse_train.dir/optimizer.cpp.o" "gcc" "src/train/CMakeFiles/fuse_train.dir/optimizer.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/train/CMakeFiles/fuse_train.dir/trainer.cpp.o" "gcc" "src/train/CMakeFiles/fuse_train.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fuse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fuse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
