# Empty dependencies file for fuse_train.
# This may be replaced when dependencies are built.
