file(REMOVE_RECURSE
  "libfuse_train.a"
)
