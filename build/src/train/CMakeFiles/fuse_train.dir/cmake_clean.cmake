file(REMOVE_RECURSE
  "CMakeFiles/fuse_train.dir/dataset.cpp.o"
  "CMakeFiles/fuse_train.dir/dataset.cpp.o.d"
  "CMakeFiles/fuse_train.dir/fuse_module.cpp.o"
  "CMakeFiles/fuse_train.dir/fuse_module.cpp.o.d"
  "CMakeFiles/fuse_train.dir/loss.cpp.o"
  "CMakeFiles/fuse_train.dir/loss.cpp.o.d"
  "CMakeFiles/fuse_train.dir/models.cpp.o"
  "CMakeFiles/fuse_train.dir/models.cpp.o.d"
  "CMakeFiles/fuse_train.dir/module.cpp.o"
  "CMakeFiles/fuse_train.dir/module.cpp.o.d"
  "CMakeFiles/fuse_train.dir/optimizer.cpp.o"
  "CMakeFiles/fuse_train.dir/optimizer.cpp.o.d"
  "CMakeFiles/fuse_train.dir/trainer.cpp.o"
  "CMakeFiles/fuse_train.dir/trainer.cpp.o.d"
  "libfuse_train.a"
  "libfuse_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
