file(REMOVE_RECURSE
  "CMakeFiles/fuse_sched.dir/execute.cpp.o"
  "CMakeFiles/fuse_sched.dir/execute.cpp.o.d"
  "CMakeFiles/fuse_sched.dir/latency.cpp.o"
  "CMakeFiles/fuse_sched.dir/latency.cpp.o.d"
  "CMakeFiles/fuse_sched.dir/report.cpp.o"
  "CMakeFiles/fuse_sched.dir/report.cpp.o.d"
  "CMakeFiles/fuse_sched.dir/timeline.cpp.o"
  "CMakeFiles/fuse_sched.dir/timeline.cpp.o.d"
  "libfuse_sched.a"
  "libfuse_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
