file(REMOVE_RECURSE
  "libfuse_sched.a"
)
