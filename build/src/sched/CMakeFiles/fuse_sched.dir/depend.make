# Empty dependencies file for fuse_sched.
# This may be replaced when dependencies are built.
