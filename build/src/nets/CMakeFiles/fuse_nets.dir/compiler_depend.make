# Empty compiler generated dependencies file for fuse_nets.
# This may be replaced when dependencies are built.
