
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nets/builder.cpp" "src/nets/CMakeFiles/fuse_nets.dir/builder.cpp.o" "gcc" "src/nets/CMakeFiles/fuse_nets.dir/builder.cpp.o.d"
  "/root/repo/src/nets/mnasnet.cpp" "src/nets/CMakeFiles/fuse_nets.dir/mnasnet.cpp.o" "gcc" "src/nets/CMakeFiles/fuse_nets.dir/mnasnet.cpp.o.d"
  "/root/repo/src/nets/mobilenet_v1.cpp" "src/nets/CMakeFiles/fuse_nets.dir/mobilenet_v1.cpp.o" "gcc" "src/nets/CMakeFiles/fuse_nets.dir/mobilenet_v1.cpp.o.d"
  "/root/repo/src/nets/mobilenet_v2.cpp" "src/nets/CMakeFiles/fuse_nets.dir/mobilenet_v2.cpp.o" "gcc" "src/nets/CMakeFiles/fuse_nets.dir/mobilenet_v2.cpp.o.d"
  "/root/repo/src/nets/mobilenet_v3.cpp" "src/nets/CMakeFiles/fuse_nets.dir/mobilenet_v3.cpp.o" "gcc" "src/nets/CMakeFiles/fuse_nets.dir/mobilenet_v3.cpp.o.d"
  "/root/repo/src/nets/resnet.cpp" "src/nets/CMakeFiles/fuse_nets.dir/resnet.cpp.o" "gcc" "src/nets/CMakeFiles/fuse_nets.dir/resnet.cpp.o.d"
  "/root/repo/src/nets/serialize.cpp" "src/nets/CMakeFiles/fuse_nets.dir/serialize.cpp.o" "gcc" "src/nets/CMakeFiles/fuse_nets.dir/serialize.cpp.o.d"
  "/root/repo/src/nets/zoo.cpp" "src/nets/CMakeFiles/fuse_nets.dir/zoo.cpp.o" "gcc" "src/nets/CMakeFiles/fuse_nets.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fuse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fuse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fuse_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
