file(REMOVE_RECURSE
  "CMakeFiles/fuse_nets.dir/builder.cpp.o"
  "CMakeFiles/fuse_nets.dir/builder.cpp.o.d"
  "CMakeFiles/fuse_nets.dir/mnasnet.cpp.o"
  "CMakeFiles/fuse_nets.dir/mnasnet.cpp.o.d"
  "CMakeFiles/fuse_nets.dir/mobilenet_v1.cpp.o"
  "CMakeFiles/fuse_nets.dir/mobilenet_v1.cpp.o.d"
  "CMakeFiles/fuse_nets.dir/mobilenet_v2.cpp.o"
  "CMakeFiles/fuse_nets.dir/mobilenet_v2.cpp.o.d"
  "CMakeFiles/fuse_nets.dir/mobilenet_v3.cpp.o"
  "CMakeFiles/fuse_nets.dir/mobilenet_v3.cpp.o.d"
  "CMakeFiles/fuse_nets.dir/resnet.cpp.o"
  "CMakeFiles/fuse_nets.dir/resnet.cpp.o.d"
  "CMakeFiles/fuse_nets.dir/serialize.cpp.o"
  "CMakeFiles/fuse_nets.dir/serialize.cpp.o.d"
  "CMakeFiles/fuse_nets.dir/zoo.cpp.o"
  "CMakeFiles/fuse_nets.dir/zoo.cpp.o.d"
  "libfuse_nets.a"
  "libfuse_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
