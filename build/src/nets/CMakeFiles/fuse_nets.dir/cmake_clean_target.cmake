file(REMOVE_RECURSE
  "libfuse_nets.a"
)
