file(REMOVE_RECURSE
  "CMakeFiles/fuse_nos.dir/search.cpp.o"
  "CMakeFiles/fuse_nos.dir/search.cpp.o.d"
  "libfuse_nos.a"
  "libfuse_nos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_nos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
