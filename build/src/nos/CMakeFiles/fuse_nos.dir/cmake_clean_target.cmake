file(REMOVE_RECURSE
  "libfuse_nos.a"
)
