# Empty dependencies file for fuse_nos.
# This may be replaced when dependencies are built.
