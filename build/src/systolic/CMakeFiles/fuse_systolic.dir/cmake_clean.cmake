file(REMOVE_RECURSE
  "CMakeFiles/fuse_systolic.dir/cycle_model.cpp.o"
  "CMakeFiles/fuse_systolic.dir/cycle_model.cpp.o.d"
  "CMakeFiles/fuse_systolic.dir/memory.cpp.o"
  "CMakeFiles/fuse_systolic.dir/memory.cpp.o.d"
  "CMakeFiles/fuse_systolic.dir/sim.cpp.o"
  "CMakeFiles/fuse_systolic.dir/sim.cpp.o.d"
  "CMakeFiles/fuse_systolic.dir/trace.cpp.o"
  "CMakeFiles/fuse_systolic.dir/trace.cpp.o.d"
  "libfuse_systolic.a"
  "libfuse_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
