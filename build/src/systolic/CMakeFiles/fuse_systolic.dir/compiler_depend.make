# Empty compiler generated dependencies file for fuse_systolic.
# This may be replaced when dependencies are built.
