file(REMOVE_RECURSE
  "libfuse_systolic.a"
)
