file(REMOVE_RECURSE
  "libfuse_hw.a"
)
