file(REMOVE_RECURSE
  "CMakeFiles/fuse_hw.dir/area_power.cpp.o"
  "CMakeFiles/fuse_hw.dir/area_power.cpp.o.d"
  "libfuse_hw.a"
  "libfuse_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
