
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/area_power.cpp" "src/hw/CMakeFiles/fuse_hw.dir/area_power.cpp.o" "gcc" "src/hw/CMakeFiles/fuse_hw.dir/area_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systolic/CMakeFiles/fuse_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fuse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fuse_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
