# Empty compiler generated dependencies file for fuse_hw.
# This may be replaced when dependencies are built.
