file(REMOVE_RECURSE
  "libfuse_core.a"
)
