file(REMOVE_RECURSE
  "CMakeFiles/fuse_core.dir/fuseconv.cpp.o"
  "CMakeFiles/fuse_core.dir/fuseconv.cpp.o.d"
  "CMakeFiles/fuse_core.dir/transform.cpp.o"
  "CMakeFiles/fuse_core.dir/transform.cpp.o.d"
  "libfuse_core.a"
  "libfuse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
