# Empty dependencies file for fuse_core.
# This may be replaced when dependencies are built.
