
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fuseconv.cpp" "src/core/CMakeFiles/fuse_core.dir/fuseconv.cpp.o" "gcc" "src/core/CMakeFiles/fuse_core.dir/fuseconv.cpp.o.d"
  "/root/repo/src/core/transform.cpp" "src/core/CMakeFiles/fuse_core.dir/transform.cpp.o" "gcc" "src/core/CMakeFiles/fuse_core.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fuse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
