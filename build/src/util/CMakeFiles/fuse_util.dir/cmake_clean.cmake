file(REMOVE_RECURSE
  "CMakeFiles/fuse_util.dir/check.cpp.o"
  "CMakeFiles/fuse_util.dir/check.cpp.o.d"
  "CMakeFiles/fuse_util.dir/cli.cpp.o"
  "CMakeFiles/fuse_util.dir/cli.cpp.o.d"
  "CMakeFiles/fuse_util.dir/csv.cpp.o"
  "CMakeFiles/fuse_util.dir/csv.cpp.o.d"
  "CMakeFiles/fuse_util.dir/rng.cpp.o"
  "CMakeFiles/fuse_util.dir/rng.cpp.o.d"
  "CMakeFiles/fuse_util.dir/strings.cpp.o"
  "CMakeFiles/fuse_util.dir/strings.cpp.o.d"
  "CMakeFiles/fuse_util.dir/table.cpp.o"
  "CMakeFiles/fuse_util.dir/table.cpp.o.d"
  "libfuse_util.a"
  "libfuse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
