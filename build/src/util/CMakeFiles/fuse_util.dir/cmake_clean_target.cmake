file(REMOVE_RECURSE
  "libfuse_util.a"
)
