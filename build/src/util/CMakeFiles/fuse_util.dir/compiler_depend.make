# Empty compiler generated dependencies file for fuse_util.
# This may be replaced when dependencies are built.
