file(REMOVE_RECURSE
  "libfuse_ria.a"
)
