
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ria/algorithms.cpp" "src/ria/CMakeFiles/fuse_ria.dir/algorithms.cpp.o" "gcc" "src/ria/CMakeFiles/fuse_ria.dir/algorithms.cpp.o.d"
  "/root/repo/src/ria/ria.cpp" "src/ria/CMakeFiles/fuse_ria.dir/ria.cpp.o" "gcc" "src/ria/CMakeFiles/fuse_ria.dir/ria.cpp.o.d"
  "/root/repo/src/ria/schedule.cpp" "src/ria/CMakeFiles/fuse_ria.dir/schedule.cpp.o" "gcc" "src/ria/CMakeFiles/fuse_ria.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fuse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
