# Empty compiler generated dependencies file for fuse_ria.
# This may be replaced when dependencies are built.
