file(REMOVE_RECURSE
  "CMakeFiles/fuse_ria.dir/algorithms.cpp.o"
  "CMakeFiles/fuse_ria.dir/algorithms.cpp.o.d"
  "CMakeFiles/fuse_ria.dir/ria.cpp.o"
  "CMakeFiles/fuse_ria.dir/ria.cpp.o.d"
  "CMakeFiles/fuse_ria.dir/schedule.cpp.o"
  "CMakeFiles/fuse_ria.dir/schedule.cpp.o.d"
  "libfuse_ria.a"
  "libfuse_ria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_ria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
