file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aspect.dir/bench_ablation_aspect.cpp.o"
  "CMakeFiles/bench_ablation_aspect.dir/bench_ablation_aspect.cpp.o.d"
  "bench_ablation_aspect"
  "bench_ablation_aspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
