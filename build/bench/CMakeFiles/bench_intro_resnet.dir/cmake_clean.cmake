file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_resnet.dir/bench_intro_resnet.cpp.o"
  "CMakeFiles/bench_intro_resnet.dir/bench_intro_resnet.cpp.o.d"
  "bench_intro_resnet"
  "bench_intro_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
