# Empty compiler generated dependencies file for bench_intro_resnet.
# This may be replaced when dependencies are built.
