# Empty dependencies file for bench_fig8c_opdist.
# This may be replaced when dependencies are built.
