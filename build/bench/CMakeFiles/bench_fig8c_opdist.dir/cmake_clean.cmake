file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8c_opdist.dir/bench_fig8c_opdist.cpp.o"
  "CMakeFiles/bench_fig8c_opdist.dir/bench_fig8c_opdist.cpp.o.d"
  "bench_fig8c_opdist"
  "bench_fig8c_opdist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8c_opdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
