file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_synth.dir/bench_accuracy_synth.cpp.o"
  "CMakeFiles/bench_accuracy_synth.dir/bench_accuracy_synth.cpp.o.d"
  "bench_accuracy_synth"
  "bench_accuracy_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
