# Empty compiler generated dependencies file for bench_accuracy_synth.
# This may be replaced when dependencies are built.
