file(REMOVE_RECURSE
  "CMakeFiles/bench_resolution.dir/bench_resolution.cpp.o"
  "CMakeFiles/bench_resolution.dir/bench_resolution.cpp.o.d"
  "bench_resolution"
  "bench_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
