# Empty compiler generated dependencies file for bench_ria_analysis.
# This may be replaced when dependencies are built.
