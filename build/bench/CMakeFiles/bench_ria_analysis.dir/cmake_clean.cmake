file(REMOVE_RECURSE
  "CMakeFiles/bench_ria_analysis.dir/bench_ria_analysis.cpp.o"
  "CMakeFiles/bench_ria_analysis.dir/bench_ria_analysis.cpp.o.d"
  "bench_ria_analysis"
  "bench_ria_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ria_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
