
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8a_latency.cpp" "bench/CMakeFiles/bench_fig8a_latency.dir/bench_fig8a_latency.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8a_latency.dir/bench_fig8a_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nos/CMakeFiles/fuse_nos.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/fuse_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/nets/CMakeFiles/fuse_nets.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fuse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/fuse_train.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/fuse_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/ria/CMakeFiles/fuse_ria.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/fuse_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fuse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
