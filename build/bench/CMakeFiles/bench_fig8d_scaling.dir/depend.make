# Empty dependencies file for bench_fig8d_scaling.
# This may be replaced when dependencies are built.
