# Empty compiler generated dependencies file for bench_width_mult.
# This may be replaced when dependencies are built.
