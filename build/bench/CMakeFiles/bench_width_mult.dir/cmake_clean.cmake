file(REMOVE_RECURSE
  "CMakeFiles/bench_width_mult.dir/bench_width_mult.cpp.o"
  "CMakeFiles/bench_width_mult.dir/bench_width_mult.cpp.o.d"
  "bench_width_mult"
  "bench_width_mult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_width_mult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
