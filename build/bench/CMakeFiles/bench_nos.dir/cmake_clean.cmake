file(REMOVE_RECURSE
  "CMakeFiles/bench_nos.dir/bench_nos.cpp.o"
  "CMakeFiles/bench_nos.dir/bench_nos.cpp.o.d"
  "bench_nos"
  "bench_nos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
