# Empty dependencies file for bench_nos.
# This may be replaced when dependencies are built.
