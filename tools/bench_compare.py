#!/usr/bin/env python3
"""Compare two bench result files and flag regressions.

Reads a baseline and a candidate, matches their rows, classifies every
numeric metric, and exits nonzero when the candidate regressed:

  * deterministic metrics (cycle counts, MAC/byte totals, roofline
    bounds, ...) are machine-independent model outputs — any difference
    at all is a regression;
  * wall-clock metrics (``*_ms``, ``ns_per_op``, ``gflops``,
    ``speedup*``) are noisy and machine-dependent — they are compared
    direction-aware against a relative tolerance, and by default only
    warn (use ``--wall-mode=fail`` to gate on them, e.g. when both files
    came from the same machine).

Classification is name-based by default, but an artifact mixing both
metric families can declare them explicitly with a top-level
``"metric_families"`` object mapping family names to fnmatch pattern
lists (first match wins, declaration order)::

    "metric_families": {"exact": ["speedup_vs_b1", "*_cycles"],
                        "wall_lower_better": ["*_ms"],
                        "wall_higher_better": ["*_gflops"]}

Families: ``exact`` (gate on any difference), ``wall_lower_better``,
``wall_higher_better``. A wall family may carry its own tolerance via
the object form ``{"patterns": [...], "tolerance": 0.1}``; per-family
tolerances override ``--wall-tolerance`` and are themselves overridden
by ``--tol METRIC=REL``. Metrics matching no declared pattern fall back
to the name heuristics. The candidate's declaration wins over the
baseline's (so renaming a family updates the rules in the same commit).
This matters for deterministic metrics whose names *look* noisy — e.g.
bench_serve's cycle-domain ``speedup_vs_b1``, which the heuristic would
tolerance-compare instead of gating exactly.

Accepted inputs, in either position:

  * a raw bench JSON artifact (``results/BENCH_*.json``) — either the
    object form with a ``rows`` list (bench_sim, bench_fusion) or the
    bare row-array form (bench_kernels);
  * a history file written by ``tools/record_bench.sh``
    (``results/history/*.jsonl``) — one schema-versioned entry per line;
    the latest entry is used unless ``--at=N`` selects another.

Exit codes: 0 = no regression, 1 = usage/schema error, 2 = regression.

Usage:
  tools/bench_compare.py BASELINE CANDIDATE [--wall-mode=warn|fail|off]
      [--wall-tolerance=0.25] [--tol METRIC=REL]... [--at=N] [--quiet]
"""

import argparse
import fnmatch
import json
import re
import sys

HISTORY_SCHEMA = 1

# Wall-clock metric name patterns, by direction — the fallback for
# metrics no "metric_families" declaration covers. Everything numeric
# that matches neither is deterministic: the analytic model and the
# bit-exact simulator must reproduce it exactly on any machine.
WALL_LOWER_IS_BETTER = re.compile(r"(_ms|_us|_ns|ns_per_op)$")
WALL_HIGHER_IS_BETTER = re.compile(r"(gflops|speedup)")

# metric_families family name -> (kind, regression direction).
FAMILY_KINDS = {
    "exact": ("exact", 0),
    "wall_lower_better": ("wall", +1),
    "wall_higher_better": ("wall", -1),
}


def fail(msg):
    print(f"bench_compare: error: {msg}", file=sys.stderr)
    sys.exit(1)


def load_document(path, at):
    """Returns the bench JSON document held by `path` (raw or history)."""
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if path.endswith(".jsonl"):
        entries = [json.loads(line) for line in text.splitlines() if line.strip()]
        if not entries:
            fail(f"{path}: empty history file")
        try:
            entry = entries[at]
        except IndexError:
            fail(f"{path}: --at={at} out of range ({len(entries)} entries)")
        return unwrap_history_entry(path, entry)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"{path}: invalid JSON: {e}")
    if isinstance(doc, dict) and "schema" in doc and "data" in doc:
        return unwrap_history_entry(path, doc)
    return doc


def unwrap_history_entry(path, entry):
    if not isinstance(entry, dict) or "data" not in entry:
        fail(f"{path}: history entry has no 'data' payload")
    if entry.get("schema") != HISTORY_SCHEMA:
        fail(f"{path}: history schema {entry.get('schema')!r}, "
             f"expected {HISTORY_SCHEMA}")
    return entry["data"]


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def row_key(row, index):
    """Row identity: the concatenation of its string-valued fields."""
    parts = [str(v) for v in row.values() if isinstance(v, str)]
    return "/".join(parts) if parts else f"row[{index}]"


def row_metrics(row):
    return {k: v for k, v in row.items() if is_number(v)}


def normalize(path, doc):
    """Flattens a bench document into an ordered {row_key: metrics} map."""
    rows = {}

    def add(key, metrics):
        if not metrics:
            return
        if key in rows:
            fail(f"{path}: duplicate row key '{key}'")
        rows[key] = metrics

    if isinstance(doc, list):
        for i, row in enumerate(doc):
            if not isinstance(row, dict):
                fail(f"{path}: row {i} is not an object")
            add(row_key(row, i), row_metrics(row))
    elif isinstance(doc, dict):
        header = {k: v for k, v in doc.items() if is_number(v)}
        add("<header>", header)
        for i, row in enumerate(doc.get("rows", [])):
            if not isinstance(row, dict):
                fail(f"{path}: rows[{i}] is not an object")
            add(row_key(row, i), row_metrics(row))
        for key, value in doc.items():
            # metric_families is classification metadata, not a data row
            # (its object form carries numeric tolerances).
            if key in ("rows", "metric_families"):
                continue
            if isinstance(value, dict):
                add(f"<{key}>", row_metrics(value))
    else:
        fail(f"{path}: expected a JSON object or array at top level")
    if not rows:
        fail(f"{path}: no numeric metrics found")
    return rows


def extract_families(path, doc):
    """Parses a document's "metric_families" declaration into an ordered
    [(kind, direction, tolerance, patterns)] list ([] when absent)."""
    if not isinstance(doc, dict):
        return []
    spec = doc.get("metric_families")
    if spec is None:
        return []
    if not isinstance(spec, dict):
        fail(f"{path}: metric_families must be an object")
    families = []
    for name, value in spec.items():
        if name not in FAMILY_KINDS:
            fail(f"{path}: unknown metric family '{name}' "
                 f"(expected one of {', '.join(sorted(FAMILY_KINDS))})")
        kind, direction = FAMILY_KINDS[name]
        tolerance = None
        if isinstance(value, dict):
            patterns = value.get("patterns", [])
            tolerance = value.get("tolerance")
            if tolerance is not None and not is_number(tolerance):
                fail(f"{path}: metric family '{name}': tolerance must be "
                     f"a number")
        else:
            patterns = value
        if (not isinstance(patterns, list)
                or not all(isinstance(p, str) for p in patterns)):
            fail(f"{path}: metric family '{name}' needs a list of "
                 f"fnmatch patterns")
        families.append((kind, direction, tolerance, patterns))
    return families


def classify(metric, families):
    """Returns (kind, direction, family_tolerance): kind is 'wall' or
    'exact', direction is the sign of a *regression* (+1 = higher is
    worse, -1 = lower is worse), family_tolerance is the declared
    per-family tolerance or None. Declared families win over the name
    heuristics; within the declaration, first matching pattern wins."""
    for kind, direction, tolerance, patterns in families:
        if any(fnmatch.fnmatchcase(metric, p) for p in patterns):
            return kind, direction, tolerance
    if WALL_LOWER_IS_BETTER.search(metric):
        return "wall", +1, None
    if WALL_HIGHER_IS_BETTER.search(metric):
        return "wall", -1, None
    return "exact", 0, None


def rel_delta(base, cand):
    if base == 0:
        return 0.0 if cand == 0 else float("inf")
    return (cand - base) / abs(base)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, add_help=True,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--wall-mode", choices=("warn", "fail", "off"),
                        default="warn",
                        help="how wall-clock regressions are treated "
                             "(default: warn)")
    parser.add_argument("--wall-tolerance", type=float, default=0.25,
                        help="relative slack for wall-clock metrics "
                             "(default: 0.25 = 25%%)")
    parser.add_argument("--tol", action="append", default=[],
                        metavar="METRIC=REL",
                        help="per-metric relative tolerance override; "
                             "turns an exact metric into a gated one or "
                             "widens a wall metric")
    parser.add_argument("--at", type=int, default=-1,
                        help="history entry index for .jsonl inputs "
                             "(default: -1, the latest)")
    parser.add_argument("--quiet", action="store_true",
                        help="print only regressions and the verdict")
    args = parser.parse_args()

    overrides = {}
    for spec in args.tol:
        metric, sep, value = spec.partition("=")
        if not sep:
            fail(f"--tol expects METRIC=REL, got '{spec}'")
        try:
            overrides[metric] = float(value)
        except ValueError:
            fail(f"--tol {metric}: '{value}' is not a number")

    base_doc = load_document(args.baseline, args.at)
    cand_doc = load_document(args.candidate, args.at)
    base_rows = normalize(args.baseline, base_doc)
    cand_rows = normalize(args.candidate, cand_doc)
    # The candidate's family declaration wins (it reflects the rules the
    # artifact is written against today); the baseline's covers diffs
    # against pre-declaration candidates.
    families = (extract_families(args.candidate, cand_doc)
                or extract_families(args.baseline, base_doc))

    added = [k for k in cand_rows if k not in base_rows]
    removed = [k for k in base_rows if k not in cand_rows]
    matched = [k for k in base_rows if k in cand_rows]

    regressions = []   # (row, metric, base, cand, why)
    warnings = []      # same shape, non-gating
    improvements = 0
    exact_checked = 0
    wall_checked = 0

    for key in matched:
        base_m, cand_m = base_rows[key], cand_rows[key]
        for metric in base_m:
            if metric not in cand_m:
                regressions.append((key, metric, base_m[metric], None,
                                    "metric missing from candidate"))
                continue
            base_v, cand_v = base_m[metric], cand_m[metric]
            kind, direction, family_tol = classify(metric, families)
            if metric in overrides:
                kind = "gated"
                tol = overrides[metric]
            elif kind == "wall":
                tol = (family_tol if family_tol is not None
                       else args.wall_tolerance)
            if kind == "exact":
                exact_checked += 1
                if base_v != cand_v:
                    regressions.append(
                        (key, metric, base_v, cand_v,
                         "deterministic metric changed"))
                continue
            # Noise-gated comparison (wall metric or override).
            wall_checked += 1
            delta = rel_delta(base_v, cand_v)
            worse = delta * direction if direction else abs(delta)
            if worse <= tol:
                if direction and delta * direction < 0:
                    improvements += 1
                continue
            why = (f"{delta:+.1%} vs ±{tol:.0%} tolerance"
                   if not direction else
                   f"{delta:+.1%} ({'higher' if direction > 0 else 'lower'}"
                   f" is worse, tolerance {tol:.0%})")
            if kind == "wall" and args.wall_mode != "fail":
                if args.wall_mode == "warn":
                    warnings.append((key, metric, base_v, cand_v, why))
            else:
                regressions.append((key, metric, base_v, cand_v, why))

    for key in removed:
        regressions.append((key, "<row>", None, None,
                            "row missing from candidate"))

    def show(items, label):
        for key, metric, base_v, cand_v, why in items:
            print(f"  {label} {key} :: {metric}: "
                  f"{base_v} -> {cand_v} ({why})")

    if not args.quiet:
        print(f"bench_compare: {args.baseline} vs {args.candidate}")
        print(f"  rows: {len(matched)} matched, {len(added)} added, "
              f"{len(removed)} removed")
        print(f"  deterministic: {exact_checked} metrics checked")
        print(f"  noise-gated: {wall_checked} metrics checked "
              f"({improvements} improved beyond tolerance)")
        if added:
            print(f"  new rows (not gated): {', '.join(added)}")
    show(warnings, "WARN")
    show(regressions, "REGRESSION")
    if regressions:
        print(f"REGRESSION: {len(regressions)} gating difference(s)")
        return 2
    print("OK: no regressions"
          + (f" ({len(warnings)} wall-clock warning(s))" if warnings else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
