#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, then regenerates every
# table/figure with CSV output into results/.
#
# The manifest of legitimate outputs is bench/*.cpp: only binaries with
# a matching source may run (a stale binary in the build dir — e.g. a
# renamed or deleted bench — would otherwise silently emit orphan
# artifacts), and after the run every file in results/ (history/ ledger
# aside) must have been rewritten by this run. Anything else — editor
# droppings, build-system strays, outputs of deleted benches — fails
# the script with a listing instead of riding along into a commit.
#
# Usage: tools/regenerate_results.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
RESULTS_DIR="$REPO_ROOT/results"

cd "$REPO_ROOT"
cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

mkdir -p "$RESULTS_DIR"
STAMP="$(mktemp "$RESULTS_DIR/.regen_stamp.XXXXXX")"
trap 'rm -f "$STAMP"' EXIT

cd "$RESULTS_DIR"
for bench in "$REPO_ROOT/$BUILD_DIR"/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue  # skip cmake artifacts
  name="$(basename "$bench")"
  if [ ! -f "$REPO_ROOT/bench/$name.cpp" ]; then
    echo "ERROR: $name has no bench/$name.cpp source — stale binary in" \
         "$BUILD_DIR; refusing to emit unmanifested results" >&2
    exit 1
  fi
  echo "=== $name ==="
  # bench_kernels (google-benchmark) and bench_ria_analysis take no --csv.
  if [ "$name" = bench_kernels ]; then
    # Machine-readable perf rows (op, backend, isa, ns/op, GFLOP/s) ride
    # along. The suite's fast_scalar legs pin --kernel-isa=scalar, so
    # the artifact records the scalar-vs-SIMD split of every operator on
    # the producing machine next to the reference-vs-fast split.
    "$bench" --json="$RESULTS_DIR/BENCH_kernels.json" | tee "$name.txt"
  elif [ "$name" = bench_sim ]; then
    # Simulator engine rows (reference/fast/fast_t4 ms + speedups).
    "$bench" --json="$RESULTS_DIR/BENCH_sim.json" | tee "$name.txt"
  elif [ "$name" = bench_fusion ]; then
    # Network-scheduler rows: per-layer vs fused roofline per network x
    # variant, with the proven never-slower bound savings.
    "$bench" --json="$RESULTS_DIR/BENCH_fusion.json" --csv | tee "$name.txt"
  elif [ "$name" = bench_dse ]; then
    # Design-space-explorer rows: the Pareto frontier over the full
    # ArrayConfig grid plus the closed-form evaluator's configs-per-second
    # against the plan-materializing baseline (>= 10x gate FUSE_CHECKed
    # inside the bench). Frontier rows are exact; *_cps and
    # speedup_vs_plan are wall-clock and only warn in bench_compare.
    "$bench" --json="$RESULTS_DIR/BENCH_dse.json" --csv | tee "$name.txt"
  elif [ "$name" = bench_serve ]; then
    # Serving-engine rows: saturation throughput (batch-1 vs dynamic
    # batching, >= 2x gate), open-loop rate sweep percentiles, and the
    # multi-tenant fingerprint. All cycle-domain, so the artifact is
    # byte-reproducible on any machine.
    "$bench" --json="$RESULTS_DIR/BENCH_serve.json" --csv | tee "$name.txt"
  elif "$bench" --help 2>&1 | grep -q -- '--csv'; then
    "$bench" --csv | tee "$name.txt"
  else
    "$bench" | tee "$name.txt"
  fi
  echo
done

# Manifest sweep: every file here must be fresher than the run stamp.
# results/history/ is the append-only perf ledger (tools/record_bench.sh)
# and is exempt — benches never write it.
mapfile -t strays < <(find "$RESULTS_DIR" -maxdepth 1 -type f \
  ! -newer "$STAMP" ! -name "$(basename "$STAMP")" | sort)
if [ "${#strays[@]}" -gt 0 ]; then
  echo "ERROR: results/ contains files no manifest bench regenerated:" >&2
  printf '  %s\n' "${strays[@]}" >&2
  echo "delete them (or restore their bench) and re-run" >&2
  exit 1
fi

echo "results written to $RESULTS_DIR"
