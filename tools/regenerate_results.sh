#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, then regenerates every
# table/figure with CSV output into results/.
#
# Usage: tools/regenerate_results.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
RESULTS_DIR="$REPO_ROOT/results"

cd "$REPO_ROOT"
cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

mkdir -p "$RESULTS_DIR"
cd "$RESULTS_DIR"
for bench in "$REPO_ROOT/$BUILD_DIR"/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue  # skip cmake artifacts
  name="$(basename "$bench")"
  echo "=== $name ==="
  # bench_kernels (google-benchmark) and bench_ria_analysis take no --csv.
  if [ "$name" = bench_kernels ]; then
    # Machine-readable perf rows (op, backend, isa, ns/op, GFLOP/s) ride
    # along. The suite's fast_scalar legs pin --kernel-isa=scalar, so
    # the artifact records the scalar-vs-SIMD split of every operator on
    # the producing machine next to the reference-vs-fast split.
    "$bench" --json="$RESULTS_DIR/BENCH_kernels.json" | tee "$name.txt"
  elif [ "$name" = bench_sim ]; then
    # Simulator engine rows (reference/fast/fast_t4 ms + speedups).
    "$bench" --json="$RESULTS_DIR/BENCH_sim.json" | tee "$name.txt"
  elif [ "$name" = bench_fusion ]; then
    # Network-scheduler rows: per-layer vs fused roofline per network x
    # variant, with the proven never-slower bound savings.
    "$bench" --json="$RESULTS_DIR/BENCH_fusion.json" --csv | tee "$name.txt"
  elif "$bench" --help 2>&1 | grep -q -- '--csv'; then
    "$bench" --csv | tee "$name.txt"
  else
    "$bench" | tee "$name.txt"
  fi
  echo
done

echo "results written to $RESULTS_DIR"
