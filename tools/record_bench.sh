#!/usr/bin/env bash
# Appends bench result artifacts to the perf history ledger.
#
# Each input (default: every results/BENCH_*.json) gains one line in
# results/history/<name>.jsonl — a schema-versioned entry wrapping the
# raw document with the provenance needed to interpret it later:
#
#   {"schema": 1, "recorded_utc": ..., "git_sha": ..., "dirty": ...,
#    "host": ..., "nproc": ..., "source": ..., "data": {...}}
#
# tools/bench_compare.py reads these files directly (latest entry by
# default, --at=N for older ones), so two points in the ledger — or a
# ledger entry against a fresh run — diff with the same tool and the
# same deterministic/wall-clock rules. Artifacts that mix both metric
# families declare them via a top-level "metric_families" object (e.g.
# BENCH_serve.json marks its cycle-domain speedup_vs_b1 exact); the
# declaration is part of "data" and rides through the ledger verbatim,
# so old entries keep classifying correctly as rules evolve.
#
# Usage: tools/record_bench.sh [BENCH_json...]
#   FUSE_HISTORY_DIR overrides the ledger directory (for tests/CI).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
HISTORY_DIR="${FUSE_HISTORY_DIR:-$REPO_ROOT/results/history}"

if [ "$#" -gt 0 ]; then
  inputs=("$@")
else
  shopt -s nullglob
  inputs=("$REPO_ROOT"/results/BENCH_*.json)
  shopt -u nullglob
fi
if [ "${#inputs[@]}" -eq 0 ]; then
  echo "record_bench: no BENCH_*.json artifacts found" >&2
  exit 1
fi

GIT_SHA="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=false
if ! git -C "$REPO_ROOT" diff --quiet 2>/dev/null; then
  GIT_DIRTY=true
fi

mkdir -p "$HISTORY_DIR"
for input in "${inputs[@]}"; do
  [ -f "$input" ] || { echo "record_bench: missing $input" >&2; exit 1; }
  name="$(basename "$input" .json)"
  ledger="$HISTORY_DIR/$name.jsonl"
  FUSE_RB_INPUT="$input" FUSE_RB_NAME="$name" FUSE_RB_SHA="$GIT_SHA" \
  FUSE_RB_DIRTY="$GIT_DIRTY" python3 - >> "$ledger" <<'EOF'
import datetime
import json
import os
import socket

with open(os.environ["FUSE_RB_INPUT"], encoding="utf-8") as f:
    data = json.load(f)  # refuse to record an unparseable artifact
entry = {
    "schema": 1,
    "recorded_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "git_sha": os.environ["FUSE_RB_SHA"],
    "dirty": os.environ["FUSE_RB_DIRTY"] == "true",
    "host": socket.gethostname(),
    "nproc": os.cpu_count(),
    "source": os.path.basename(os.environ["FUSE_RB_INPUT"]),
    "data": data,
}
print(json.dumps(entry, separators=(",", ":")))
EOF
  echo "recorded $name -> $ledger ($(wc -l < "$ledger") entries)"
done
