#!/usr/bin/env bash
# Full verification gate:
#   1. default build + complete test suite,
#   2. ThreadSanitizer build running the concurrency suites
#      (test_thread_pool, test_sweep_determinism, test_properties,
#      test_telemetry, test_kernels, test_systolic_sim, test_netplan,
#      test_serve — the kernel/sim pair covers the fast backends'
#      parallel execution; test_netplan runs the network executor across
#      schedule modes and sim threads; test_serve replays the serving
#      engine's worker-determinism trace at 1/2/4 payload threads),
#   3. AddressSanitizer build running the mapping/executor suites
#      (test_mapping, test_execute, test_systolic_sim, test_netplan,
#      test_serve),
#   4. Release (-O3) build running the kernel differential suite plus a
#      bench_kernels smoke pass — the kernel exactness contract must
#      survive full optimization, not just the default build,
#   5. forced-ISA matrix: the kernel differential suite (test_kernels +
#      test_cpu_features) must pass under FUSE_KERNEL_ISA=scalar and
#      =auto, and a bench_table1 smoke must produce CSVs that agree
#      within float tolerance between --kernel-isa=scalar and =auto (on
#      non-AVX2 machines both legs run scalar and the diff is trivially
#      exact),
#   6. bench determinism: every bench binary's output must be
#      byte-identical between --threads=1 --no-cache and --threads=8
#      (only footer lines — see filter_bench_output — may differ),
#   7. backend equality: every table/figure bench's stdout and CSVs must
#      be byte-identical between --kernel-backend=fast and
#      --kernel-backend=reference. Both legs pin FUSE_KERNEL_ISA=scalar:
#      only the scalar ISA is bit-exact against the reference kernels
#      (the SIMD ISAs are ULP-bounded, covered by stage 5), so this
#      byte-level diff needs the scalar pin to stay meaningful,
#   8. sim backend equality: the simulator-driven examples
#      (simulate_network, simulate_layer, pe_heatmap) must print
#      byte-identical stdout under --sim-backend=fast and
#      --sim-backend=reference, and a bench_sim smoke pass re-verifies the
#      fast engine's bit-exactness layer by layer,
#   9. schedule equality: the fused network schedule is strictly opt-in —
#      every golden bench's stdout must be byte-identical between a
#      flag-less run and an explicit --sched-mode=per-layer run,
#  10. telemetry export: profile_network's trace/stats JSON must parse,
#      in both the default per-layer view and the fused-schedule view —
#      and with --attribution-json the cycle-attribution report must
#      parse and its components must sum back to the totals,
#  11. perf-regression lab: fresh bench_fusion/bench_sim JSON artifacts
#      go through tools/bench_compare.py against the committed
#      results/BENCH_*.json baselines (deterministic metrics — cycles,
#      MACs, bytes, roofline bounds — must reproduce exactly on any
#      machine; wall-clock metrics only warn), a deliberately perturbed
#      copy must make the gate exit nonzero, and a record_bench.sh
#      ledger entry must round-trip through the same comparator,
#  12. serving lab: bench_serve's artifact must parse, declare its
#      metric_families, clear the >= 2x dynamic-batching gate, and be
#      byte-identical between --workers=1 and --workers=4; a fresh run
#      diffs against the committed results/BENCH_serve.json via
#      bench_compare, a perturbed speedup_vs_b1 (exact by declaration,
#      wall-looking by name) must exit nonzero, and serve_demo's replay
#      must be byte-deterministic across repeat runs,
#  13. design-space lab: bench_dse FUSE_CHECKs the closed-form
#      evaluator's equality against the plan path over an axis-spanning
#      config subset and the >= 10x configs-per-second gate internally;
#      its stdout and frontier CSV must be byte-identical between
#      --threads=1 --no-cache and --threads=8, the fresh BENCH_dse.json
#      diffs against the committed baseline via bench_compare (frontier
#      rows exact, *_cps wall), and a perturbed frontier latency must
#      make the gate exit nonzero.
#
# Usage: tools/check.sh [build-dir] [tsan-build-dir] [asan-build-dir]
#        [release-build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
ASAN_DIR="${3:-build-asan}"
RELEASE_DIR="${4:-build-release}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

# Strips the lines a bench is allowed to vary between runs: the
# "sweep: ..." wall-time/cache footer and any "# ..." comment footers.
# Every determinism diff goes through this one filter so new footer kinds
# are excluded in a single place.
filter_bench_output() {
  grep -vE '^(sweep:|#)' || true
}

echo "=== [1/13] default build + full test suite ==="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo
echo "=== [2/13] ThreadSanitizer build + concurrency suites ==="
CONCURRENCY_TESTS=(test_thread_pool test_sweep_determinism test_properties
                   test_telemetry test_kernels test_systolic_sim
                   test_netplan test_serve)
cmake -B "$TSAN_DIR" -S . -DFUSE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$(nproc)" --target "${CONCURRENCY_TESTS[@]}"
for t in "${CONCURRENCY_TESTS[@]}"; do
  echo "--- $t (TSan) ---"
  "$TSAN_DIR/tests/$t"
done

echo
echo "=== [3/13] AddressSanitizer build + mapping/executor suites ==="
ASAN_TESTS=(test_mapping test_execute test_systolic_sim test_netplan
            test_serve)
cmake -B "$ASAN_DIR" -S . -DFUSE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j "$(nproc)" --target "${ASAN_TESTS[@]}"
for t in "${ASAN_TESTS[@]}"; do
  echo "--- $t (ASan) ---"
  "$ASAN_DIR/tests/$t"
done

echo
echo "=== [4/13] Release -O3 build: kernel differential suite + bench smoke ==="
cmake -B "$RELEASE_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$RELEASE_DIR" -j "$(nproc)" --target test_kernels bench_kernels
echo "--- test_kernels (Release) ---"
"$RELEASE_DIR/tests/test_kernels"
echo "--- bench_kernels smoke (Release) ---"
"$RELEASE_DIR/bench/bench_kernels" --benchmark_min_time=0.01 > /dev/null
echo "bench_kernels smoke: ok"

echo
echo "=== [5/13] forced-ISA matrix: differential suite + bench CSV tolerance ==="
TELEMETRY_TMP="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_TMP"' EXIT
# The differential suite under each forced ISA. Under =scalar the float
# kernels must be bit-exact against the reference; under =auto the best
# available SIMD tier runs with ULP-bounded floats and bit-exact int8.
# On non-AVX2 machines =auto resolves to scalar and the suite logs a
# "forced-ISA coverage runs scalar only" note instead of failing.
for isa in scalar auto; do
  for t in test_kernels test_cpu_features; do
    echo "--- $t (FUSE_KERNEL_ISA=$isa) ---"
    FUSE_KERNEL_ISA="$isa" "$BUILD_DIR/tests/$t"
  done
done
# A golden-producing bench must agree between the scalar and SIMD ISAs
# within float print precision: the simulator cycle counts are integers
# and the derived ratios are printed rounded, so the CSVs normally match
# exactly — the python diff allows 1e-4 relative slack on numeric fields
# so a last-digit rounding flip is not a failure.
for isa in scalar auto; do
  dir="$TELEMETRY_TMP/isa.$isa"
  mkdir -p "$dir"
  (cd "$dir" && "$REPO_ROOT/$BUILD_DIR/bench/bench_table1" \
     --kernel-isa="$isa" --csv | filter_bench_output > stdout.txt)
done
python3 - "$TELEMETRY_TMP/isa.scalar" "$TELEMETRY_TMP/isa.auto" <<'EOF'
import os, sys
a_dir, b_dir = sys.argv[1], sys.argv[2]
names = sorted(os.listdir(a_dir))
assert names == sorted(os.listdir(b_dir)), "ISA legs wrote different files"
def close(a, b):
    if a == b:
        return True
    try:
        fa, fb = float(a), float(b)
    except ValueError:
        return False
    return abs(fa - fb) <= 1e-4 * max(1.0, abs(fa), abs(fb))
for name in names:
    with open(os.path.join(a_dir, name)) as f:
        a_lines = f.read().splitlines()
    with open(os.path.join(b_dir, name)) as f:
        b_lines = f.read().splitlines()
    assert len(a_lines) == len(b_lines), f"{name}: line counts differ"
    for i, (la, lb) in enumerate(zip(a_lines, b_lines)):
        fields_a = la.replace(",", " ").split()
        fields_b = lb.replace(",", " ").split()
        ok = len(fields_a) == len(fields_b) and all(
            close(x, y) for x, y in zip(fields_a, fields_b))
        assert ok, f"{name}:{i + 1}: ISA legs disagree:\n  {la}\n  {lb}"
print(f"{len(names)} files agree between --kernel-isa=scalar and =auto")
EOF

echo
echo "=== [6/13] bench determinism: --threads=1 --no-cache vs --threads=8 ==="
for bench in bench_table1 bench_fig8d_scaling bench_pareto \
             bench_resolution bench_width_mult bench_nos; do
  bin="$BUILD_DIR/bench/$bench"
  [ -x "$bin" ] || { echo "missing $bin" >&2; exit 1; }
  # The second leg also exercises the telemetry flags: stdout must stay
  # byte-identical with tracing on.
  if diff <("$bin" --threads=1 --no-cache | filter_bench_output) \
          <("$bin" --threads=8 \
               --trace-json="$TELEMETRY_TMP/$bench.trace.json" \
               --stats-json="$TELEMETRY_TMP/$bench.stats.json" \
             | filter_bench_output); then
    echo "$bench: byte-identical"
  else
    echo "$bench: OUTPUT DIVERGED between thread counts" >&2
    exit 1
  fi
done

echo
echo "=== [7/13] backend equality: --kernel-backend=fast vs reference ==="
# Every golden-producing bench (all of bench/ except the google-benchmark
# micro-bench, whose output is wall time). Each runs with --csv where
# supported, in a per-backend scratch dir; stdout and every CSV written
# must match byte-for-byte. bench_accuracy_synth runs real training, so
# it gets reduced arguments to keep the (much slower) reference leg short;
# the full-size equality evidence is that results/bench_accuracy_synth.txt
# itself regenerates identically under either backend.
GOLDEN_BENCHES=(bench_table1 bench_fig8a_latency bench_fig8b_layerwise
                bench_fig8c_opdist bench_fig8d_scaling bench_overhead
                bench_intro_resnet bench_accuracy_synth bench_ria_analysis
                bench_ablation_broadcast bench_ablation_dataflow
                bench_ablation_memory bench_energy bench_width_mult
                bench_resolution bench_ablation_aspect bench_nos
                bench_pareto bench_fusion)
for bench in "${GOLDEN_BENCHES[@]}"; do
  bin="$REPO_ROOT/$BUILD_DIR/bench/$bench"
  [ -x "$bin" ] || { echo "missing $bin" >&2; exit 1; }
  extra=()
  if "$bin" --help 2>&1 | grep -q -- '--csv'; then
    extra+=(--csv)
  fi
  if [ "$bench" = bench_accuracy_synth ]; then
    extra+=(--seeds=1 --epochs=2 --train=64 --eval=32)
  fi
  # Pin the scalar ISA on both legs: only scalar is bit-exact against
  # the reference kernels, which is what makes a byte-level diff valid.
  for backend in fast reference; do
    dir="$TELEMETRY_TMP/$bench.$backend"
    mkdir -p "$dir"
    if [ "$bench" = bench_ria_analysis ]; then
      # The one bench with no CLI flags: backend comes from the env.
      (cd "$dir" && FUSE_KERNEL_BACKEND="$backend" FUSE_KERNEL_ISA=scalar \
         "$bin" | filter_bench_output > stdout.txt)
    else
      (cd "$dir" && "$bin" --kernel-backend="$backend" --kernel-isa=scalar \
         "${extra[@]}" | filter_bench_output > stdout.txt)
    fi
  done
  if diff -r "$TELEMETRY_TMP/$bench.fast" "$TELEMETRY_TMP/$bench.reference"
  then
    echo "$bench: backends byte-identical"
  else
    echo "$bench: OUTPUT DIVERGED between kernel backends" >&2
    exit 1
  fi
done

echo
echo "=== [8/13] sim backend equality: --sim-backend=fast vs reference ==="
# The simulator-driven examples must print byte-identical stdout under
# either engine (the fast engine is bit-exact, cycles included). The
# second fast leg also pins --sim-threads=4: fold-parallel execution may
# not change a byte either.
for example in simulate_network simulate_layer pe_heatmap; do
  bin="$BUILD_DIR/examples/$example"
  [ -x "$bin" ] || { echo "missing $bin" >&2; exit 1; }
  "$bin" --sim-backend=reference > "$TELEMETRY_TMP/$example.reference.txt"
  "$bin" --sim-backend=fast --sim-threads=1 > "$TELEMETRY_TMP/$example.fast.txt"
  "$bin" --sim-backend=fast --sim-threads=4 > "$TELEMETRY_TMP/$example.fast4.txt"
  if diff "$TELEMETRY_TMP/$example.reference.txt" \
          "$TELEMETRY_TMP/$example.fast.txt" &&
     diff "$TELEMETRY_TMP/$example.reference.txt" \
          "$TELEMETRY_TMP/$example.fast4.txt"; then
    echo "$example: sim backends byte-identical"
  else
    echo "$example: OUTPUT DIVERGED between sim backends" >&2
    exit 1
  fi
done
# bench_sim aborts internally if any layer's fast result is not bit-exact
# against the reference, so a plain run is the layer-by-layer check.
"$BUILD_DIR/bench/bench_sim" > /dev/null
echo "bench_sim bit-exactness smoke: ok"

echo
echo "=== [9/13] schedule equality: default vs --sched-mode=per-layer ==="
# The fused network schedule is strictly opt-in: with no flag, every
# bench must print exactly what an explicit --sched-mode=per-layer run
# prints (bench_ria_analysis takes no CLI flags, so its per-layer leg
# pins the FUSE_SCHED_MODE env override instead).
for bench in "${GOLDEN_BENCHES[@]}"; do
  bin="$REPO_ROOT/$BUILD_DIR/bench/$bench"
  [ -x "$bin" ] || { echo "missing $bin" >&2; exit 1; }
  extra=()
  if [ "$bench" = bench_accuracy_synth ]; then
    extra+=(--seeds=1 --epochs=2 --train=64 --eval=32)
  fi
  if [ "$bench" = bench_ria_analysis ]; then
    ok=$(diff <("$bin" | filter_bench_output) \
              <(FUSE_SCHED_MODE=per-layer "$bin" | filter_bench_output) \
           > /dev/null && echo yes || echo no)
  else
    ok=$(diff <("$bin" "${extra[@]}" | filter_bench_output) \
              <("$bin" --sched-mode=per-layer "${extra[@]}" \
                 | filter_bench_output) > /dev/null && echo yes || echo no)
  fi
  if [ "$ok" = yes ]; then
    echo "$bench: default schedule matches per-layer"
  else
    echo "$bench: OUTPUT CHANGED under the default schedule mode" >&2
    exit 1
  fi
done

echo
echo "=== [10/13] telemetry export: profile_network JSON validity ==="
"$BUILD_DIR/examples/profile_network" --net mobilenet_v2 --variant fuse_full \
  --trace-json "$TELEMETRY_TMP/profile.json" \
  --stats-json "$TELEMETRY_TMP/profile.stats.json"
# The fused-schedule view exports through the same sink and must also
# produce valid JSON (segment spans, SRAM counter track, prefetch spans),
# plus the cycle-attribution report and its counter track.
"$BUILD_DIR/examples/profile_network" --net mobilenet_v2 --variant fuse_full \
  --sched-mode=fused \
  --trace-json "$TELEMETRY_TMP/profile.fused.json" \
  --stats-json "$TELEMETRY_TMP/profile.fused.stats.json" \
  --attribution-json "$TELEMETRY_TMP/profile.attribution.json"
python3 - "$TELEMETRY_TMP" <<'EOF'
import glob, json, os, sys
tmp = sys.argv[1]
paths = sorted(glob.glob(os.path.join(tmp, "*.json")))
assert paths, "no telemetry JSON written"
for path in paths:
    with open(path) as f:
        doc = json.load(f)
    if os.path.basename(path).endswith(
            ("trace.json", "profile.json", "profile.fused.json")):
        assert doc["traceEvents"], f"{path}: empty traceEvents"
# The attribution decomposition must sum back to its own totals, layer
# by layer and across the whole network (the binary FUSE_CHECKs the
# deeper identities; this re-checks the exported JSON independently).
with open(os.path.join(tmp, "profile.attribution.json")) as f:
    attr = json.load(f)
totals = attr["totals"]
assert sum(l["cycles"] for l in attr["layers"]) == totals["cycles"]
for l in attr["layers"]:
    assert l["compute_cycles"] + l["fill_drain_cycles"] == l["cycles"], \
        f"layer {l['name']}: split does not sum"
assert totals["compute_cycles"] + totals["fill_drain_cycles"] \
    == totals["cycles"]
assert totals["cycles"] + totals["dram_stall_cycles"] \
    == totals["bound_cycles"]
print(f"{len(paths)} telemetry JSON files parsed; attribution sums check")
EOF

echo
echo "=== [11/13] perf-regression lab: bench_compare vs committed baselines ==="
# Fresh machine-readable artifacts from the two deterministic-core
# benches, diffed against the committed baselines. Cycle counts, MAC and
# byte totals, and roofline bounds are model outputs and must reproduce
# exactly on any machine; the wall-clock columns (bench_sim's *_ms and
# speedups) were recorded elsewhere and only warn.
"$BUILD_DIR/bench/bench_fusion" --json="$TELEMETRY_TMP/BENCH_fusion.json" \
  > /dev/null
"$BUILD_DIR/bench/bench_sim" --json="$TELEMETRY_TMP/BENCH_sim.json" \
  > /dev/null
python3 tools/bench_compare.py results/BENCH_fusion.json \
  "$TELEMETRY_TMP/BENCH_fusion.json"
python3 tools/bench_compare.py results/BENCH_sim.json \
  "$TELEMETRY_TMP/BENCH_sim.json"
# The gate must actually gate: a single perturbed deterministic metric
# has to turn into a nonzero exit.
python3 - "$TELEMETRY_TMP" <<'EOF'
import json, os, sys
tmp = sys.argv[1]
with open(os.path.join(tmp, "BENCH_fusion.json")) as f:
    doc = json.load(f)
doc["rows"][0]["compute_cycles"] += 1
with open(os.path.join(tmp, "BENCH_fusion.perturbed.json"), "w") as f:
    json.dump(doc, f)
EOF
if python3 tools/bench_compare.py results/BENCH_fusion.json \
     "$TELEMETRY_TMP/BENCH_fusion.perturbed.json" --quiet; then
  echo "bench_compare FAILED to flag a perturbed baseline" >&2
  exit 1
fi
echo "bench_compare: perturbed artifact correctly rejected"
# History ledger round-trip: a record_bench.sh entry in a scratch ledger
# must compare clean against the raw artifact it wraps.
FUSE_HISTORY_DIR="$TELEMETRY_TMP/history" tools/record_bench.sh \
  "$TELEMETRY_TMP/BENCH_fusion.json"
python3 tools/bench_compare.py "$TELEMETRY_TMP/history/BENCH_fusion.jsonl" \
  "$TELEMETRY_TMP/BENCH_fusion.json" --quiet

echo
echo "=== [12/13] serving lab: bench_serve + serve_demo determinism ==="
# bench_serve FUSE_CHECKs the >= 2x dynamic-batching gate internally, so
# a clean exit is the throughput claim. The artifact must be
# byte-identical between worker counts: every number in it is a
# virtual-cycle scheduling decision or a seeded payload checksum, none
# of which may depend on payload-thread interleaving.
"$BUILD_DIR/bench/bench_serve" --workers=1 \
  --json="$TELEMETRY_TMP/BENCH_serve.w1.json" > /dev/null
"$BUILD_DIR/bench/bench_serve" --workers=4 \
  --json="$TELEMETRY_TMP/BENCH_serve.w4.json" > /dev/null
if diff "$TELEMETRY_TMP/BENCH_serve.w1.json" \
        "$TELEMETRY_TMP/BENCH_serve.w4.json"; then
  echo "bench_serve: artifact byte-identical across --workers=1/4"
else
  echo "bench_serve: ARTIFACT DIVERGED between worker counts" >&2
  exit 1
fi
python3 - "$TELEMETRY_TMP/BENCH_serve.w1.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["metric_families"] == {"exact": ["*"]}, \
    "BENCH_serve must declare every metric exact"
speedups = [r["speedup_vs_b1"] for r in doc["rows"]
            if r.get("experiment") == "saturation"]
assert speedups and max(speedups) >= 2.0, \
    f"serving gate: best speedup {max(speedups, default=0)} < 2x"
assert any(r.get("experiment") == "rate_sweep" for r in doc["rows"])
assert any(r.get("experiment") == "multi_tenant" for r in doc["rows"])
print(f"BENCH_serve.json valid; best saturation speedup "
      f"{max(speedups):.2f}x (gate >= 2x)")
EOF
python3 tools/bench_compare.py results/BENCH_serve.json \
  "$TELEMETRY_TMP/BENCH_serve.w1.json"
# The family declaration must actually bite: speedup_vs_b1 looks like a
# wall-clock metric by name, so only the metric_families machinery makes
# this small perturbation a hard failure.
python3 - "$TELEMETRY_TMP" <<'EOF'
import json, os, sys
tmp = sys.argv[1]
with open(os.path.join(tmp, "BENCH_serve.w1.json")) as f:
    doc = json.load(f)
for row in doc["rows"]:
    if "speedup_vs_b1" in row:
        row["speedup_vs_b1"] *= 1.05  # well inside the wall tolerance
with open(os.path.join(tmp, "BENCH_serve.perturbed.json"), "w") as f:
    json.dump(doc, f)
EOF
if python3 tools/bench_compare.py results/BENCH_serve.json \
     "$TELEMETRY_TMP/BENCH_serve.perturbed.json" --quiet; then
  echo "bench_compare FAILED to gate a perturbed exact-family metric" >&2
  exit 1
fi
echo "bench_compare: perturbed speedup_vs_b1 correctly rejected"
# serve_demo replays a canned trace; its whole printout (scheduling
# table, percentiles, metrics registry) must be reproducible.
"$BUILD_DIR/examples/serve_demo" > "$TELEMETRY_TMP/serve_demo.a.txt"
"$BUILD_DIR/examples/serve_demo" > "$TELEMETRY_TMP/serve_demo.b.txt"
if diff "$TELEMETRY_TMP/serve_demo.a.txt" "$TELEMETRY_TMP/serve_demo.b.txt"
then
  echo "serve_demo: replay byte-deterministic"
else
  echo "serve_demo: OUTPUT DIVERGED between runs" >&2
  exit 1
fi

echo
echo "=== [13/13] design-space lab: bench_dse equality + frontier determinism ==="
# A plain run is already the evaluator-equality grid and the >= 10x
# throughput gate (both FUSE_CHECKed inside the binary). The two legs
# here additionally pin thread-count determinism: stdout (minus "# "
# wall-clock footers) and the frontier CSV may not differ by a byte
# between a serial uncached run and an 8-thread memoized one.
for leg in "t1 --threads=1 --no-cache" "t8 --threads=8"; do
  set -- $leg
  tag="$1"; shift
  dir="$TELEMETRY_TMP/bench_dse.$tag"
  mkdir -p "$dir"
  (cd "$dir" && "$REPO_ROOT/$BUILD_DIR/bench/bench_dse" "$@" --csv \
     --json="$dir/BENCH_dse.json" | filter_bench_output > stdout.txt)
done
if diff "$TELEMETRY_TMP/bench_dse.t1/stdout.txt" \
        "$TELEMETRY_TMP/bench_dse.t8/stdout.txt" &&
   diff "$TELEMETRY_TMP/bench_dse.t1/bench_dse.csv" \
        "$TELEMETRY_TMP/bench_dse.t8/bench_dse.csv"; then
  echo "bench_dse: stdout and frontier CSV byte-identical across threads"
else
  echo "bench_dse: OUTPUT DIVERGED between thread counts" >&2
  exit 1
fi
python3 tools/bench_compare.py results/BENCH_dse.json \
  "$TELEMETRY_TMP/bench_dse.t1/BENCH_dse.json"
# The frontier rows are exact by declaration: nudging one latency within
# what a wall-clock tolerance would forgive must still fail the gate.
python3 - "$TELEMETRY_TMP" <<'EOF'
import json, os, sys
tmp = sys.argv[1]
with open(os.path.join(tmp, "bench_dse.t1", "BENCH_dse.json")) as f:
    doc = json.load(f)
doc["rows"][0]["latency_ms"] *= 1.01
with open(os.path.join(tmp, "BENCH_dse.perturbed.json"), "w") as f:
    json.dump(doc, f)
EOF
if python3 tools/bench_compare.py results/BENCH_dse.json \
     "$TELEMETRY_TMP/BENCH_dse.perturbed.json" --quiet; then
  echo "bench_compare FAILED to gate a perturbed frontier latency" >&2
  exit 1
fi
echo "bench_compare: perturbed frontier latency correctly rejected"

echo
echo "all checks passed"
