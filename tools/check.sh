#!/usr/bin/env bash
# Full verification gate:
#   1. default build + complete test suite,
#   2. ThreadSanitizer build running the concurrency suites
#      (test_thread_pool, test_sweep_determinism, test_properties),
#   3. AddressSanitizer build running the mapping/executor suites
#      (test_mapping, test_execute, test_systolic_sim),
#   4. bench determinism: every bench binary's output must be
#      byte-identical between --threads=1 --no-cache and --threads=8
#      (only the "sweep: ..." wall-time footer may differ).
#
# Usage: tools/check.sh [build-dir] [tsan-build-dir] [asan-build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
ASAN_DIR="${3:-build-asan}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

echo "=== [1/4] default build + full test suite ==="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo
echo "=== [2/4] ThreadSanitizer build + concurrency suites ==="
CONCURRENCY_TESTS=(test_thread_pool test_sweep_determinism test_properties)
cmake -B "$TSAN_DIR" -S . -DFUSE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$(nproc)" --target "${CONCURRENCY_TESTS[@]}"
for t in "${CONCURRENCY_TESTS[@]}"; do
  echo "--- $t (TSan) ---"
  "$TSAN_DIR/tests/$t"
done

echo
echo "=== [3/4] AddressSanitizer build + mapping/executor suites ==="
ASAN_TESTS=(test_mapping test_execute test_systolic_sim)
cmake -B "$ASAN_DIR" -S . -DFUSE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j "$(nproc)" --target "${ASAN_TESTS[@]}"
for t in "${ASAN_TESTS[@]}"; do
  echo "--- $t (ASan) ---"
  "$ASAN_DIR/tests/$t"
done

echo
echo "=== [4/4] bench determinism: --threads=1 --no-cache vs --threads=8 ==="
for bench in bench_table1 bench_fig8d_scaling bench_pareto \
             bench_resolution bench_width_mult bench_nos; do
  bin="$BUILD_DIR/bench/$bench"
  [ -x "$bin" ] || { echo "missing $bin" >&2; exit 1; }
  if diff <("$bin" --threads=1 --no-cache | grep -v '^sweep:') \
          <("$bin" --threads=8 | grep -v '^sweep:') >/dev/null; then
    echo "$bench: byte-identical"
  else
    echo "$bench: OUTPUT DIVERGED between thread counts" >&2
    exit 1
  fi
done

echo
echo "all checks passed"
