#!/usr/bin/env bash
# Full verification gate:
#   1. default build + complete test suite,
#   2. ThreadSanitizer build running the concurrency suites
#      (test_thread_pool, test_sweep_determinism, test_properties,
#      test_telemetry),
#   3. AddressSanitizer build running the mapping/executor suites
#      (test_mapping, test_execute, test_systolic_sim),
#   4. bench determinism: every bench binary's output must be
#      byte-identical between --threads=1 --no-cache and --threads=8
#      (only footer lines — see filter_bench_output — may differ),
#   5. telemetry export: profile_network's trace/stats JSON must parse.
#
# Usage: tools/check.sh [build-dir] [tsan-build-dir] [asan-build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
ASAN_DIR="${3:-build-asan}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

# Strips the lines a bench is allowed to vary between runs: the
# "sweep: ..." wall-time/cache footer and any "# ..." comment footers.
# Every determinism diff goes through this one filter so new footer kinds
# are excluded in a single place.
filter_bench_output() {
  grep -vE '^(sweep:|#)' || true
}

echo "=== [1/5] default build + full test suite ==="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo
echo "=== [2/5] ThreadSanitizer build + concurrency suites ==="
CONCURRENCY_TESTS=(test_thread_pool test_sweep_determinism test_properties
                   test_telemetry)
cmake -B "$TSAN_DIR" -S . -DFUSE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$(nproc)" --target "${CONCURRENCY_TESTS[@]}"
for t in "${CONCURRENCY_TESTS[@]}"; do
  echo "--- $t (TSan) ---"
  "$TSAN_DIR/tests/$t"
done

echo
echo "=== [3/5] AddressSanitizer build + mapping/executor suites ==="
ASAN_TESTS=(test_mapping test_execute test_systolic_sim)
cmake -B "$ASAN_DIR" -S . -DFUSE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j "$(nproc)" --target "${ASAN_TESTS[@]}"
for t in "${ASAN_TESTS[@]}"; do
  echo "--- $t (ASan) ---"
  "$ASAN_DIR/tests/$t"
done

echo
echo "=== [4/5] bench determinism: --threads=1 --no-cache vs --threads=8 ==="
TELEMETRY_TMP="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_TMP"' EXIT
for bench in bench_table1 bench_fig8d_scaling bench_pareto \
             bench_resolution bench_width_mult bench_nos; do
  bin="$BUILD_DIR/bench/$bench"
  [ -x "$bin" ] || { echo "missing $bin" >&2; exit 1; }
  # The second leg also exercises the telemetry flags: stdout must stay
  # byte-identical with tracing on.
  if diff <("$bin" --threads=1 --no-cache | filter_bench_output) \
          <("$bin" --threads=8 \
               --trace-json="$TELEMETRY_TMP/$bench.trace.json" \
               --stats-json="$TELEMETRY_TMP/$bench.stats.json" \
             | filter_bench_output); then
    echo "$bench: byte-identical"
  else
    echo "$bench: OUTPUT DIVERGED between thread counts" >&2
    exit 1
  fi
done

echo
echo "=== [5/5] telemetry export: profile_network JSON validity ==="
"$BUILD_DIR/examples/profile_network" --net mobilenet_v2 --variant fuse_full \
  --trace-json "$TELEMETRY_TMP/profile.json" \
  --stats-json "$TELEMETRY_TMP/profile.stats.json"
python3 - "$TELEMETRY_TMP" <<'EOF'
import glob, json, os, sys
tmp = sys.argv[1]
paths = sorted(glob.glob(os.path.join(tmp, "*.json")))
assert paths, "no telemetry JSON written"
for path in paths:
    with open(path) as f:
        doc = json.load(f)
    if os.path.basename(path).endswith(("trace.json", "profile.json")):
        assert doc["traceEvents"], f"{path}: empty traceEvents"
print(f"{len(paths)} telemetry JSON files parsed")
EOF

echo
echo "all checks passed"
